//! A real blocked dgemm kernel (validation-scale).
//!
//! The uOS timing model predicts *when* a paper-scale dgemm finishes; this
//! module checks *what* a dgemm computes, so the workload layer is not
//! just a stopwatch.  Uses rayon, the idiomatic data-parallel layer for
//! this domain, parallelizing over row blocks exactly the way a MIC
//! OpenMP dgemm splits its iteration space.

use rayon::prelude::*;

/// Block edge for the L2-friendly tiling.
const BLOCK: usize = 64;

/// C = alpha·A·B + beta·C, row-major N×N.
pub fn dgemm(n: usize, alpha: f64, a: &[f64], b: &[f64], beta: f64, c: &mut [f64]) {
    assert_eq!(a.len(), n * n, "A must be n*n");
    assert_eq!(b.len(), n * n, "B must be n*n");
    assert_eq!(c.len(), n * n, "C must be n*n");

    // Scale C by beta first (including beta = 0 semantics).
    if beta != 1.0 {
        c.par_iter_mut().for_each(|x| *x *= beta);
    }

    // Parallel over row panels; each panel does a blocked ikj product.
    c.par_chunks_mut(BLOCK * n).enumerate().for_each(|(panel, c_panel)| {
        let i0 = panel * BLOCK;
        let i_end = (i0 + BLOCK).min(n);
        for k0 in (0..n).step_by(BLOCK) {
            let k_end = (k0 + BLOCK).min(n);
            for j0 in (0..n).step_by(BLOCK) {
                let j_end = (j0 + BLOCK).min(n);
                for i in i0..i_end {
                    let c_row = &mut c_panel[(i - i0) * n..(i - i0) * n + n];
                    for k in k0..k_end {
                        let aik = alpha * a[i * n + k];
                        if aik == 0.0 {
                            continue;
                        }
                        let b_row = &b[k * n..k * n + n];
                        for j in j0..j_end {
                            c_row[j] += aik * b_row[j];
                        }
                    }
                }
            }
        }
    });
}

/// Reference O(N³) triple loop for checking the blocked kernel.
pub fn dgemm_reference(n: usize, alpha: f64, a: &[f64], b: &[f64], beta: f64, c: &mut [f64]) {
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..n {
                acc += a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] = alpha * acc + beta * c[i * n + j];
        }
    }
}

/// Deterministic test matrix (the MKL sample initializes with a similar
/// index-based pattern).
pub fn init_matrix(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = vphi_sim_core::SplitMix64::new(seed);
    (0..n * n).map(|_| rng.next_f64() - 0.5).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
    }

    #[test]
    fn blocked_matches_reference() {
        for n in [1usize, 7, 64, 97, 130] {
            let a = init_matrix(n, 1);
            let b = init_matrix(n, 2);
            let mut c1 = init_matrix(n, 3);
            let mut c2 = c1.clone();
            dgemm(n, 1.5, &a, &b, 0.5, &mut c1);
            dgemm_reference(n, 1.5, &a, &b, 0.5, &mut c2);
            let diff = max_abs_diff(&c1, &c2);
            assert!(diff < 1e-9 * n as f64, "n={n}: max diff {diff}");
        }
    }

    #[test]
    fn beta_zero_overwrites_garbage() {
        let n = 32;
        let a = init_matrix(n, 4);
        let b = init_matrix(n, 5);
        let mut c = vec![f64::MAX; n * n]; // garbage that must not leak through
                                           // beta=0 must fully overwrite, but MAX*0 = NaN-free here because we
                                           // multiply first; use a finite garbage value instead.
        let mut c_fin = vec![12345.0; n * n];
        dgemm(n, 1.0, &a, &b, 0.0, &mut c_fin);
        let mut expected = vec![0.0; n * n];
        dgemm_reference(n, 1.0, &a, &b, 0.0, &mut expected);
        assert!(max_abs_diff(&c_fin, &expected) < 1e-10 * n as f64);
        let _ = &mut c;
    }

    #[test]
    fn identity_matrix_is_neutral() {
        let n = 50;
        let mut eye = vec![0.0; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let b = init_matrix(n, 9);
        let mut c = vec![0.0; n * n];
        dgemm(n, 1.0, &eye, &b, 0.0, &mut c);
        assert!(max_abs_diff(&c, &b) < 1e-12);
    }

    #[test]
    fn matrix_init_is_deterministic() {
        assert_eq!(init_matrix(16, 7), init_matrix(16, 7));
        assert_ne!(init_matrix(16, 7), init_matrix(16, 8));
    }

    #[test]
    #[should_panic(expected = "A must be n*n")]
    fn dimension_mismatch_panics() {
        let mut c = vec![0.0; 4];
        dgemm(2, 1.0, &[0.0; 3], &[0.0; 4], 0.0, &mut c);
    }
}

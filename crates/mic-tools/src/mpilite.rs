//! mpi-lite — a minimal MPI-style communicator over SCIF for the
//! **symmetric** execution mode.
//!
//! "In symmetric mode Xeon Phi can be viewed as an independent node and …
//! a user can launch some processes of the same parallel application on
//! the host side and some other processes on the accelerator, using for
//! example MPI." (paper §II-A).  Intel MPI on MPSS rides on SCIF for the
//! host↔card hops, which is why vPHI supports the mode transparently.
//!
//! Topology: a star rooted at rank 0.  Rank 0 (host or VM) listens; every
//! other rank (host, VM or card) connects and announces itself.
//! Collectives are implemented gather/scatter-at-root, the classic small-
//! world MPI fallback.

use vphi_coi::transport::{CoiEnv, CoiListener, CoiTransport};
use vphi_scif::{NodeId, Port, ScifError, ScifResult};
use vphi_sim_core::Timeline;

/// One participant in the communicator.
pub struct MpiRank {
    rank: usize,
    size: usize,
    /// Root: one link per leaf (index = leaf rank - 1).  Leaf: one link to
    /// the root.
    links: Vec<Box<dyn CoiTransport>>,
}

impl std::fmt::Debug for MpiRank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MpiRank").field("rank", &self.rank).field("size", &self.size).finish()
    }
}

impl MpiRank {
    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn size(&self) -> usize {
        self.size
    }

    pub fn is_root(&self) -> bool {
        self.rank == 0
    }

    fn link_to(&self, peer: usize) -> ScifResult<&dyn CoiTransport> {
        if self.is_root() {
            if peer == 0 || peer >= self.size {
                return Err(ScifError::Inval);
            }
            Ok(self.links[peer - 1].as_ref())
        } else {
            if peer != 0 {
                return Err(ScifError::OpNotSupported); // leaves only talk to root
            }
            Ok(self.links[0].as_ref())
        }
    }

    /// Point-to-point send (root↔leaf only, star topology).
    pub fn send(&self, peer: usize, data: &[u8], tl: &mut Timeline) -> ScifResult<()> {
        let link = self.link_to(peer)?;
        link.send(&(data.len() as u32).to_le_bytes(), tl)?;
        link.send(data, tl)?;
        Ok(())
    }

    /// Point-to-point receive (blocking).
    pub fn recv(&self, peer: usize, tl: &mut Timeline) -> ScifResult<Vec<u8>> {
        let link = self.link_to(peer)?;
        let mut len = [0u8; 4];
        if link.recv(&mut len, tl)? < 4 {
            return Err(ScifError::ConnReset);
        }
        let mut data = vec![0u8; u32::from_le_bytes(len) as usize];
        if !data.is_empty() && link.recv(&mut data, tl)? < data.len() {
            return Err(ScifError::ConnReset);
        }
        Ok(data)
    }

    /// MPI_Barrier.
    pub fn barrier(&self, tl: &mut Timeline) -> ScifResult<()> {
        if self.is_root() {
            for peer in 1..self.size {
                self.recv(peer, tl)?;
            }
            for peer in 1..self.size {
                self.send(peer, &[1], tl)?;
            }
        } else {
            self.send(0, &[1], tl)?;
            self.recv(0, tl)?;
        }
        Ok(())
    }

    /// MPI_Allreduce(SUM) over one f64.
    pub fn allreduce_sum(&self, x: f64, tl: &mut Timeline) -> ScifResult<f64> {
        if self.is_root() {
            let mut total = x;
            for peer in 1..self.size {
                let data = self.recv(peer, tl)?;
                let bytes: [u8; 8] = data.as_slice().try_into().map_err(|_| ScifError::Inval)?;
                total += f64::from_le_bytes(bytes);
            }
            for peer in 1..self.size {
                self.send(peer, &total.to_le_bytes(), tl)?;
            }
            Ok(total)
        } else {
            self.send(0, &x.to_le_bytes(), tl)?;
            let data = self.recv(0, tl)?;
            let bytes: [u8; 8] = data.as_slice().try_into().map_err(|_| ScifError::Inval)?;
            Ok(f64::from_le_bytes(bytes))
        }
    }

    /// MPI_Bcast of a byte payload from the root.
    pub fn bcast(&self, data: Option<&[u8]>, tl: &mut Timeline) -> ScifResult<Vec<u8>> {
        if self.is_root() {
            let payload = data.ok_or(ScifError::Inval)?;
            for peer in 1..self.size {
                self.send(peer, payload, tl)?;
            }
            Ok(payload.to_vec())
        } else {
            self.recv(0, tl)
        }
    }

    /// MPI_Gather of one f64 per rank to the root (root receives all in
    /// rank order, leaves return their own value).
    pub fn gather(&self, x: f64, tl: &mut Timeline) -> ScifResult<Vec<f64>> {
        if self.is_root() {
            let mut out = vec![x];
            for peer in 1..self.size {
                let data = self.recv(peer, tl)?;
                let bytes: [u8; 8] = data.as_slice().try_into().map_err(|_| ScifError::Inval)?;
                out.push(f64::from_le_bytes(bytes));
            }
            Ok(out)
        } else {
            self.send(0, &x.to_le_bytes(), tl)?;
            Ok(vec![x])
        }
    }
}

/// Establish rank 0: listen on `port` and accept `size - 1` leaves.
/// Leaves announce their ranks; the world is complete when every rank
/// 1..size has checked in.
pub fn establish_root(
    env: &dyn CoiEnv,
    port: Port,
    size: usize,
    tl: &mut Timeline,
) -> ScifResult<MpiRank> {
    if size < 2 {
        return Err(ScifError::Inval);
    }
    let listener: Box<dyn CoiListener> = env.listen(port, tl)?;
    let mut links: Vec<Option<Box<dyn CoiTransport>>> = (1..size).map(|_| None).collect();
    for _ in 1..size {
        let conn = listener.accept(tl)?;
        let mut rank_bytes = [0u8; 8];
        if conn.recv(&mut rank_bytes, tl)? < 8 {
            return Err(ScifError::ConnReset);
        }
        let rank = u64::from_le_bytes(rank_bytes) as usize;
        if rank == 0 || rank >= size || links[rank - 1].is_some() {
            return Err(ScifError::Inval);
        }
        links[rank - 1] = Some(conn);
    }
    listener.close();
    Ok(MpiRank {
        rank: 0,
        size,
        links: links.into_iter().map(|l| l.expect("all ranks checked in")).collect(),
    })
}

/// Establish a leaf rank: connect to the root at `(root_node, port)` and
/// announce `rank`.  Retries while the root's listener is not yet up —
/// mpirun-style rendezvous, since rank launch order is unordered.
pub fn establish_leaf(
    env: &dyn CoiEnv,
    root_node: NodeId,
    port: Port,
    rank: usize,
    size: usize,
    tl: &mut Timeline,
) -> ScifResult<MpiRank> {
    if rank == 0 || rank >= size {
        return Err(ScifError::Inval);
    }
    let mut last = ScifError::ConnRefused;
    for _ in 0..2000 {
        match env.connect(root_node, port, tl) {
            Ok(conn) => {
                conn.send(&(rank as u64).to_le_bytes(), tl)?;
                return Ok(MpiRank { rank, size, links: vec![conn] });
            }
            Err(ScifError::ConnRefused) => {
                last = ScifError::ConnRefused;
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            Err(e) => return Err(e),
        }
    }
    Err(last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vphi::builder::VphiHost;
    use vphi_coi::NativeEnv;
    use vphi_scif::HOST_NODE;

    /// Device-side environment: opens endpoints on a card's node so that
    /// symmetric-mode ranks can run "on the coprocessor".
    pub struct DeviceSideEnv {
        fabric: Arc<vphi_scif::ScifFabric>,
        node: NodeId,
    }

    impl DeviceSideEnv {
        pub fn new(host: &VphiHost, mic: usize) -> Self {
            DeviceSideEnv { fabric: Arc::clone(host.fabric()), node: host.device_node(mic) }
        }
    }

    impl CoiEnv for DeviceSideEnv {
        fn connect(
            &self,
            node: NodeId,
            port: Port,
            tl: &mut Timeline,
        ) -> ScifResult<Box<dyn CoiTransport>> {
            let ep = vphi_scif::ScifEndpoint::open(&self.fabric, self.node)?;
            ep.connect(vphi_scif::ScifAddr::new(node, port), tl)?;
            Ok(Box::new(ep))
        }

        fn listen(&self, port: Port, tl: &mut Timeline) -> ScifResult<Box<dyn CoiListener>> {
            let ep = vphi_scif::ScifEndpoint::open(&self.fabric, self.node)?;
            ep.bind(port, &mut *tl)?;
            ep.listen(16, &mut *tl)?;
            Ok(Box::new(ep))
        }

        fn device_count(&self) -> usize {
            1
        }

        fn card_usable(&self, _mic: u32, _tl: &mut Timeline) -> bool {
            true
        }

        fn label(&self) -> String {
            format!("{}", self.node)
        }
    }

    fn world(host: &VphiHost, port: u16, size: usize) -> Vec<std::thread::JoinHandle<Vec<f64>>> {
        // Rank 0 on the host, odd ranks on the card, even on the host —
        // the symmetric layout.
        let mut handles = Vec::new();
        for rank in 0..size {
            let env: Arc<dyn CoiEnv> = if rank % 2 == 1 {
                Arc::new(DeviceSideEnv::new(host, 0))
            } else {
                Arc::new(NativeEnv::new(host))
            };
            handles.push(std::thread::spawn(move || {
                let mut tl = Timeline::new();
                let comm = if rank == 0 {
                    establish_root(env.as_ref(), Port(port), size, &mut tl).unwrap()
                } else {
                    establish_leaf(env.as_ref(), HOST_NODE, Port(port), rank, size, &mut tl)
                        .unwrap()
                };
                comm.barrier(&mut tl).unwrap();
                let sum = comm.allreduce_sum(rank as f64 + 1.0, &mut tl).unwrap();
                let gathered = comm.gather(rank as f64, &mut tl).unwrap();
                comm.barrier(&mut tl).unwrap();
                let mut out = vec![sum];
                out.extend(gathered);
                out
            }));
        }
        handles
    }

    #[test]
    fn symmetric_world_collectives() {
        let host = VphiHost::new(1);
        let size = 4;
        let results: Vec<Vec<f64>> =
            world(&host, 555, size).into_iter().map(|h| h.join().unwrap()).collect();
        // Allreduce: 1+2+3+4 = 10 on every rank.
        for r in &results {
            assert_eq!(r[0], 10.0);
        }
        // Root's gather saw every rank in order.
        let root = results.iter().find(|r| r.len() == 1 + size).unwrap();
        assert_eq!(&root[1..], &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn bcast_reaches_leaves() {
        let host = VphiHost::new(1);
        let mut handles = Vec::new();
        for rank in 0..3usize {
            let env: Arc<dyn CoiEnv> = Arc::new(NativeEnv::new(&host));
            handles.push(std::thread::spawn(move || {
                let mut tl = Timeline::new();
                let comm = if rank == 0 {
                    establish_root(env.as_ref(), Port(556), 3, &mut tl).unwrap()
                } else {
                    establish_leaf(env.as_ref(), HOST_NODE, Port(556), rank, 3, &mut tl).unwrap()
                };
                comm.bcast(if rank == 0 { Some(b"model-params") } else { None }, &mut tl).unwrap()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), b"model-params");
        }
    }

    #[test]
    fn invalid_topologies_rejected() {
        let host = VphiHost::new(1);
        let env = NativeEnv::new(&host);
        let mut tl = Timeline::new();
        assert!(establish_root(&env, Port(557), 1, &mut tl).is_err());
        assert!(establish_leaf(&env, HOST_NODE, Port(557), 0, 4, &mut tl).is_err());
        assert!(establish_leaf(&env, HOST_NODE, Port(557), 4, 4, &mut tl).is_err());
    }
}

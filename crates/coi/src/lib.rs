//! # vphi-coi — the Coprocessor Offload Infrastructure
//!
//! COI is Intel MPSS's runtime layer above SCIF (paper §II-B): tools and
//! frameworks use it "to query and control the state of Xeon Phi devices
//! … or to offload computational workloads to the coprocessor, by loading
//! the appropriate libraries and executables, transferring the data over
//! PCIe".  A **coi_daemon** on each card (started after the uOS boots)
//! accepts those requests.
//!
//! Because vPHI virtualizes the SCIF layer underneath, this entire crate
//! runs unmodified from inside a VM — the [`transport::CoiTransport`]
//! abstraction is instantiated either with a native host endpoint or with
//! the guest shim, and nothing above it can tell the difference.  That is
//! the paper's compatibility claim, made executable.
//!
//! * [`wire`] — length-prefixed message frames.
//! * [`protocol`] — the daemon dialogue (handshake, process launch, bulk
//!   transfer, buffers, run-function).
//! * [`transport`] — the SCIF-connection abstraction + native/guest
//!   environments.
//! * [`daemon::CoiDaemon`] — the device-side service.
//! * [`engine`], [`process`], [`buffer`], [`pipeline`] — the host-side
//!   library (COIEngine/COIProcess/COIBuffer/COIPipeline analogues).

pub mod buffer;
pub mod daemon;
pub mod engine;
pub mod pipeline;
pub mod process;
pub mod protocol;
pub mod transport;
pub mod wire;

pub use daemon::{CoiDaemon, COI_PORT_BASE};
pub use engine::CoiEngine;
pub use process::{CoiProcess, ProcessExit};
pub use protocol::{CoiMsg, ComputeManifest};
pub use transport::{CoiEnv, CoiTransport, GuestEnv, NativeEnv};

//! Length-prefixed frames and primitive field encoding.
//!
//! Every COI message is one frame: a little-endian `u32` length followed
//! by that many payload bytes.  Frames travel on the byte-exact SCIF lane;
//! bulk content (binaries, buffer data) travels on the timed lane between
//! frames.

use vphi_scif::{ScifError, ScifResult};
use vphi_sim_core::Timeline;

use crate::transport::CoiTransport;

/// Maximum sane frame size — a corrupted length prefix fails fast instead
/// of blocking forever on a bogus read.
pub const MAX_FRAME: u32 = 1 << 20;

/// Send one frame.
pub fn write_frame(t: &dyn CoiTransport, payload: &[u8], tl: &mut Timeline) -> ScifResult<()> {
    if payload.len() as u32 > MAX_FRAME {
        return Err(ScifError::Inval);
    }
    let len = (payload.len() as u32).to_le_bytes();
    t.send(&len, tl)?;
    t.send(payload, tl)?;
    Ok(())
}

/// Receive one frame (blocking).  `Ok(None)` on clean EOF.
pub fn read_frame(t: &dyn CoiTransport, tl: &mut Timeline) -> ScifResult<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let n = t.recv(&mut len_bytes, tl)?;
    if n == 0 {
        return Ok(None);
    }
    if n < 4 {
        return Err(ScifError::ConnReset);
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(ScifError::Inval);
    }
    let mut payload = vec![0u8; len as usize];
    if len > 0 {
        let n = t.recv(&mut payload, tl)?;
        if n < len as usize {
            return Err(ScifError::ConnReset);
        }
    }
    Ok(Some(payload))
}

/// Field writer used by the protocol codec.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn str(&mut self, s: &str) -> &mut Self {
        let bytes = s.as_bytes();
        self.u32(bytes.len() as u32);
        self.buf.extend_from_slice(bytes);
        self
    }

    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Field reader used by the protocol codec.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> ScifResult<&'a [u8]> {
        if self.at + n > self.buf.len() {
            return Err(ScifError::Inval);
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> ScifResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> ScifResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub fn u64(&mut self) -> ScifResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub fn f64(&mut self) -> ScifResult<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub fn str(&mut self) -> ScifResult<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ScifError::Inval)
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_round_trip() {
        let mut w = ByteWriter::new();
        w.u8(7).u32(1234).u64(u64::MAX).f64(3.5).str("dgemm_mic");
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 1234);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.f64().unwrap(), 3.5);
        assert_eq!(r.str().unwrap(), "dgemm_mic");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn reader_rejects_truncation() {
        let mut w = ByteWriter::new();
        w.str("hello");
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes[..bytes.len() - 1]);
        assert!(r.str().is_err());
        let mut r = ByteReader::new(&[]);
        assert!(r.u8().is_err());
        assert!(r.u64().is_err());
    }

    #[test]
    fn empty_and_unicode_strings() {
        let mut w = ByteWriter::new();
        w.str("").str("αβγ-mic0");
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.str().unwrap(), "");
        assert_eq!(r.str().unwrap(), "αβγ-mic0");
    }
}

//! The device-side **coi_daemon**.
//!
//! "Xeon Phi device receives the respective requests from the host
//! through a COI daemon that is executed after uOS has booted." (paper
//! §II-B).  One daemon runs per card, listening on a well-known SCIF
//! port; each accepted connection is one client process session, serviced
//! on its own (uOS) thread.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use vphi::builder::VphiHost;
use vphi_phi::{ComputeJob, PhiBoard};
use vphi_scif::{Port, ScifEndpoint, ScifError, ScifResult};
use vphi_sim_core::{CostModel, SimDuration, SpanLabel, Timeline};
use vphi_sync::{LockClass, TrackedMutex};

use crate::protocol::{CoiMsg, ComputeManifest, COI_VERSION};
use crate::wire::{read_frame, write_frame};

/// coi_daemon for mic0 listens on this SCIF port; micN on `BASE + N`.
pub const COI_PORT_BASE: u16 = 400;

/// A running daemon (device-side service).
pub struct CoiDaemon {
    listener: Arc<ScifEndpoint>,
    accept_thread: TrackedMutex<Option<std::thread::JoinHandle<()>>>,
    sessions: Arc<TrackedMutex<Vec<std::thread::JoinHandle<()>>>>,
    running: Arc<AtomicBool>,
    launches: Arc<AtomicU64>,
}

impl std::fmt::Debug for CoiDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoiDaemon").finish_non_exhaustive()
    }
}

impl CoiDaemon {
    /// The daemon's port for card `mic`.
    pub fn port(mic: usize) -> Port {
        Port(COI_PORT_BASE + mic as u16)
    }

    /// Start the daemon for card `mic` of `host`.
    pub fn spawn(host: &VphiHost, mic: usize) -> ScifResult<CoiDaemon> {
        let board = Arc::clone(host.board(mic));
        let cost = Arc::clone(host.cost());
        let listener = Arc::new(host.device_endpoint(mic)?);
        let mut tl = Timeline::new();
        listener.bind(Self::port(mic), &mut tl)?;
        listener.listen(16, &mut tl)?;

        let running = Arc::new(AtomicBool::new(true));
        let launches = Arc::new(AtomicU64::new(0));
        let sessions: Arc<TrackedMutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(TrackedMutex::new(LockClass::ServerSessions, Vec::new()));

        let l2 = Arc::clone(&listener);
        let (s2, la2) = (Arc::clone(&sessions), Arc::clone(&launches));
        let accept_running = Arc::clone(&running);
        let accept_thread = std::thread::Builder::new()
            .name(format!("coi-daemon-mic{mic}"))
            .spawn(move || {
                let running = accept_running;
                while running.load(Ordering::Acquire) {
                    let mut tl = Timeline::new();
                    match l2.accept(&mut tl) {
                        Ok(conn) => {
                            let board = Arc::clone(&board);
                            let cost = Arc::clone(&cost);
                            let launches = Arc::clone(&la2);
                            let h = std::thread::spawn(move || {
                                session(conn, board, cost, launches);
                            });
                            s2.lock().push(h);
                        }
                        Err(_) => break, // listener closed or wall timeout
                    }
                }
            })
            .expect("spawn coi daemon");

        Ok(CoiDaemon {
            listener,
            accept_thread: TrackedMutex::new(LockClass::ServerAccept, Some(accept_thread)),
            sessions,
            running,
            launches,
        })
    }

    /// Processes launched since boot.
    pub fn launch_count(&self) -> u64 {
        self.launches.load(Ordering::Relaxed)
    }

    /// Stop accepting and join all session threads.
    pub fn shutdown(&self) {
        if !self.running.swap(false, Ordering::AcqRel) {
            return;
        }
        self.listener.close();
        if let Some(h) = self.accept_thread.lock().take() {
            let _ = h.join();
        }
        for h in self.sessions.lock().drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for CoiDaemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Run the uOS compute job described by a manifest.
fn run_manifest(
    board: &PhiBoard,
    name: &str,
    manifest: &ComputeManifest,
    tl: &mut Timeline,
) -> SimDuration {
    let job = ComputeJob::new(name, manifest.threads, manifest.flops, manifest.bytes);
    board.uos().run(&job, tl).duration
}

/// One client session: strict request/response until EOF.
#[allow(clippy::while_let_loop)] // read-decode-dispatch shape stays explicit
fn session(
    conn: ScifEndpoint,
    board: Arc<PhiBoard>,
    cost: Arc<CostModel>,
    launches: Arc<AtomicU64>,
) {
    let mut tl = Timeline::new();
    let mut buffers: HashMap<u64, u64> = HashMap::new(); // id -> device offset
    let mut next_buffer = 1u64;
    let mut next_pid = 100u64;

    let reply = |conn: &ScifEndpoint, msg: &CoiMsg, tl: &mut Timeline| -> ScifResult<()> {
        write_frame(conn, &msg.encode(), tl)
    };

    loop {
        let frame = match read_frame(&conn, &mut tl) {
            Ok(Some(f)) => f,
            Ok(None) | Err(_) => break,
        };
        let msg = match CoiMsg::decode(&frame) {
            Ok(m) => m,
            Err(_) => {
                let _ = reply(&conn, &CoiMsg::Error { errno: ScifError::Inval.errno() }, &mut tl);
                continue;
            }
        };
        // Every control message costs the daemon its handling time.
        tl.charge(SpanLabel::CoiControl, cost.coi_control);

        let outcome: ScifResult<()> = (|| {
            match msg {
                CoiMsg::Handshake { version } => {
                    if version != COI_VERSION {
                        reply(&conn, &CoiMsg::Error { errno: ScifError::Inval.errno() }, &mut tl)?;
                    } else {
                        reply(&conn, &CoiMsg::HandshakeAck { version: COI_VERSION }, &mut tl)?;
                    }
                }
                CoiMsg::LaunchProcess { name, binary_bytes, lib_bytes, manifest, .. } => {
                    // Pull the shipped binary + dependent libraries.
                    conn.recv_timed(binary_bytes + lib_bytes, &mut tl)?;
                    tl.charge(SpanLabel::DeviceSpawn, cost.device_spawn_process);
                    let pid = next_pid;
                    next_pid += 1;
                    launches.fetch_add(1, Ordering::Relaxed);
                    reply(&conn, &CoiMsg::ProcessStarted { pid }, &mut tl)?;
                    if manifest.flops > 0.0 || manifest.bytes > 0 {
                        // A self-contained binary (native mode): run it on
                        // the uOS and proxy stdout + exit back.
                        let dur = run_manifest(&board, &name, &manifest, &mut tl);
                        let stdout = format!(
                            "{name}: {:.3} GFLOP on {} threads in {dur}\n",
                            manifest.flops / 1e9,
                            manifest.threads
                        );
                        reply(&conn, &CoiMsg::Stdout { text: stdout }, &mut tl)?;
                        reply(
                            &conn,
                            &CoiMsg::ProcessExited { code: 0, device_time_ns: dur.as_nanos() },
                            &mut tl,
                        )?;
                    }
                    // A zero-work manifest is an offload *sink* process: it
                    // parks and serves buffer / run-function requests until
                    // the session closes.
                }
                CoiMsg::CreateBuffer { size } => match board.memory().alloc_timed(size) {
                    Ok(region) => {
                        let id = next_buffer;
                        next_buffer += 1;
                        buffers.insert(id, region.offset());
                        reply(&conn, &CoiMsg::BufferCreated { id }, &mut tl)?;
                    }
                    Err(_) => {
                        reply(&conn, &CoiMsg::Error { errno: ScifError::NoMem.errno() }, &mut tl)?;
                    }
                },
                CoiMsg::WriteBuffer { id, size } if buffers.contains_key(&id) => {
                    conn.recv_timed(size, &mut tl)?;
                    reply(&conn, &CoiMsg::WriteAck, &mut tl)?;
                }
                CoiMsg::ReadBuffer { id, size } if buffers.contains_key(&id) => {
                    reply(&conn, &CoiMsg::ReadReady { size }, &mut tl)?;
                    conn.send_timed(size, &mut tl)?;
                }
                CoiMsg::RunFunction { name, buffer_ids, manifest }
                    if buffer_ids.iter().all(|id| buffers.contains_key(id)) =>
                {
                    let dur = run_manifest(&board, &name, &manifest, &mut tl);
                    reply(
                        &conn,
                        &CoiMsg::FunctionDone { ret: 0, device_time_ns: dur.as_nanos() },
                        &mut tl,
                    )?;
                }
                CoiMsg::DestroyBuffer { id } => match buffers.remove(&id) {
                    Some(offset) => {
                        let _ = board.memory().free(offset);
                        reply(&conn, &CoiMsg::WriteAck, &mut tl)?;
                    }
                    None => {
                        reply(&conn, &CoiMsg::Error { errno: ScifError::Inval.errno() }, &mut tl)?;
                    }
                },
                // Client-bound messages arriving at the daemon are a
                // protocol violation.
                _ => {
                    reply(&conn, &CoiMsg::Error { errno: ScifError::Inval.errno() }, &mut tl)?;
                }
            }
            Ok(())
        })();
        if outcome.is_err() {
            break;
        }
    }
    // Free any buffers the client leaked.
    for (_, offset) in buffers {
        let _ = board.memory().free(offset);
    }
    conn.close();
}

//! The COI client ↔ coi_daemon dialogue.

use vphi_scif::{ScifError, ScifResult};

use crate::wire::{ByteReader, ByteWriter};

/// What a MIC binary will do on the card, characterized for the uOS
/// compute model: total floating-point work, total memory traffic, and
/// the thread count it spawns.  (The mic-tools crate derives this from
/// concrete workloads like dgemm.)
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeManifest {
    pub flops: f64,
    pub bytes: u64,
    pub threads: u32,
}

impl ComputeManifest {
    pub fn new(flops: f64, bytes: u64, threads: u32) -> Self {
        ComputeManifest { flops, bytes, threads }
    }
}

/// The COI protocol messages.
#[derive(Debug, Clone, PartialEq)]
pub enum CoiMsg {
    // client → daemon
    /// Version handshake (COI checks host/card stack compatibility).
    Handshake {
        version: u32,
    },
    /// Launch a shipped binary; `binary_bytes + lib_bytes` follow on the
    /// timed bulk lane.
    LaunchProcess {
        name: String,
        binary_bytes: u64,
        lib_bytes: u64,
        env_count: u32,
        manifest: ComputeManifest,
    },
    /// Create a device buffer of `size` bytes (offload mode).
    CreateBuffer {
        size: u64,
    },
    /// Write `size` bytes into buffer `id` (bulk follows on timed lane).
    WriteBuffer {
        id: u64,
        size: u64,
    },
    /// Read `size` bytes back from buffer `id` (bulk returns on timed lane).
    ReadBuffer {
        id: u64,
        size: u64,
    },
    /// Run an offloaded function against the given buffers.
    RunFunction {
        name: String,
        buffer_ids: Vec<u64>,
        manifest: ComputeManifest,
    },
    /// Destroy a device buffer.
    DestroyBuffer {
        id: u64,
    },

    // daemon → client
    HandshakeAck {
        version: u32,
    },
    ProcessStarted {
        pid: u64,
    },
    /// Proxied stdout text (micnativeloadex relays it to the caller).
    Stdout {
        text: String,
    },
    ProcessExited {
        code: i32,
        device_time_ns: u64,
    },
    BufferCreated {
        id: u64,
    },
    WriteAck,
    ReadReady {
        size: u64,
    },
    FunctionDone {
        ret: u64,
        device_time_ns: u64,
    },
    Error {
        errno: i32,
    },
}

/// The daemon protocol version (mirrors an MPSS release).
pub const COI_VERSION: u32 = 3800;

impl CoiMsg {
    fn opcode(&self) -> u8 {
        match self {
            CoiMsg::Handshake { .. } => 1,
            CoiMsg::LaunchProcess { .. } => 2,
            CoiMsg::CreateBuffer { .. } => 3,
            CoiMsg::WriteBuffer { .. } => 4,
            CoiMsg::ReadBuffer { .. } => 5,
            CoiMsg::RunFunction { .. } => 6,
            CoiMsg::DestroyBuffer { .. } => 7,
            CoiMsg::HandshakeAck { .. } => 65,
            CoiMsg::ProcessStarted { .. } => 66,
            CoiMsg::Stdout { .. } => 67,
            CoiMsg::ProcessExited { .. } => 68,
            CoiMsg::BufferCreated { .. } => 69,
            CoiMsg::WriteAck => 70,
            CoiMsg::ReadReady { .. } => 71,
            CoiMsg::FunctionDone { .. } => 72,
            CoiMsg::Error { .. } => 73,
        }
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u8(self.opcode());
        match self {
            CoiMsg::Handshake { version } | CoiMsg::HandshakeAck { version } => {
                w.u32(*version);
            }
            CoiMsg::LaunchProcess { name, binary_bytes, lib_bytes, env_count, manifest } => {
                w.str(name)
                    .u64(*binary_bytes)
                    .u64(*lib_bytes)
                    .u32(*env_count)
                    .f64(manifest.flops)
                    .u64(manifest.bytes)
                    .u32(manifest.threads);
            }
            CoiMsg::CreateBuffer { size } => {
                w.u64(*size);
            }
            CoiMsg::WriteBuffer { id, size } | CoiMsg::ReadBuffer { id, size } => {
                w.u64(*id).u64(*size);
            }
            CoiMsg::RunFunction { name, buffer_ids, manifest } => {
                w.str(name).u32(buffer_ids.len() as u32);
                for id in buffer_ids {
                    w.u64(*id);
                }
                w.f64(manifest.flops).u64(manifest.bytes).u32(manifest.threads);
            }
            CoiMsg::DestroyBuffer { id } | CoiMsg::ProcessStarted { pid: id } => {
                w.u64(*id);
            }
            CoiMsg::Stdout { text } => {
                w.str(text);
            }
            CoiMsg::ProcessExited { code, device_time_ns } => {
                w.u32(*code as u32).u64(*device_time_ns);
            }
            CoiMsg::BufferCreated { id } => {
                w.u64(*id);
            }
            CoiMsg::WriteAck => {}
            CoiMsg::ReadReady { size } => {
                w.u64(*size);
            }
            CoiMsg::FunctionDone { ret, device_time_ns } => {
                w.u64(*ret).u64(*device_time_ns);
            }
            CoiMsg::Error { errno } => {
                w.u32(*errno as u32);
            }
        }
        w.finish()
    }

    pub fn decode(buf: &[u8]) -> ScifResult<CoiMsg> {
        let mut r = ByteReader::new(buf);
        let op = r.u8()?;
        Ok(match op {
            1 => CoiMsg::Handshake { version: r.u32()? },
            2 => CoiMsg::LaunchProcess {
                name: r.str()?,
                binary_bytes: r.u64()?,
                lib_bytes: r.u64()?,
                env_count: r.u32()?,
                manifest: ComputeManifest::new(r.f64()?, r.u64()?, r.u32()?),
            },
            3 => CoiMsg::CreateBuffer { size: r.u64()? },
            4 => CoiMsg::WriteBuffer { id: r.u64()?, size: r.u64()? },
            5 => CoiMsg::ReadBuffer { id: r.u64()?, size: r.u64()? },
            6 => {
                let name = r.str()?;
                let n = r.u32()?;
                let mut buffer_ids = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    buffer_ids.push(r.u64()?);
                }
                CoiMsg::RunFunction {
                    name,
                    buffer_ids,
                    manifest: ComputeManifest::new(r.f64()?, r.u64()?, r.u32()?),
                }
            }
            7 => CoiMsg::DestroyBuffer { id: r.u64()? },
            65 => CoiMsg::HandshakeAck { version: r.u32()? },
            66 => CoiMsg::ProcessStarted { pid: r.u64()? },
            67 => CoiMsg::Stdout { text: r.str()? },
            68 => CoiMsg::ProcessExited { code: r.u32()? as i32, device_time_ns: r.u64()? },
            69 => CoiMsg::BufferCreated { id: r.u64()? },
            70 => CoiMsg::WriteAck,
            71 => CoiMsg::ReadReady { size: r.u64()? },
            72 => CoiMsg::FunctionDone { ret: r.u64()?, device_time_ns: r.u64()? },
            73 => CoiMsg::Error { errno: r.u32()? as i32 },
            _ => return Err(ScifError::Inval),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_messages() -> Vec<CoiMsg> {
        vec![
            CoiMsg::Handshake { version: COI_VERSION },
            CoiMsg::HandshakeAck { version: COI_VERSION },
            CoiMsg::LaunchProcess {
                name: "dgemm_mic".into(),
                binary_bytes: 1 << 20,
                lib_bytes: 140 << 20,
                env_count: 3,
                manifest: ComputeManifest::new(2.0e12, 1 << 30, 224),
            },
            CoiMsg::CreateBuffer { size: 64 << 20 },
            CoiMsg::WriteBuffer { id: 3, size: 64 << 20 },
            CoiMsg::ReadBuffer { id: 3, size: 1 << 10 },
            CoiMsg::RunFunction {
                name: "offload_dgemm".into(),
                buffer_ids: vec![1, 2, 3],
                manifest: ComputeManifest::new(1.0e9, 0, 112),
            },
            CoiMsg::DestroyBuffer { id: 3 },
            CoiMsg::ProcessStarted { pid: 42 },
            CoiMsg::Stdout { text: "PASSED\n".into() },
            CoiMsg::ProcessExited { code: 0, device_time_ns: 123456 },
            CoiMsg::ProcessExited { code: -9, device_time_ns: 0 },
            CoiMsg::BufferCreated { id: 9 },
            CoiMsg::WriteAck,
            CoiMsg::ReadReady { size: 77 },
            CoiMsg::FunctionDone { ret: 0xDEAD, device_time_ns: 999 },
            CoiMsg::Error { errno: 22 },
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for m in all_messages() {
            let bytes = m.encode();
            let back = CoiMsg::decode(&bytes).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn opcodes_unique() {
        let mut seen = std::collections::HashSet::new();
        for m in all_messages() {
            seen.insert(m.opcode());
        }
        assert_eq!(seen.len(), 16); // two ProcessExited share an opcode
    }

    #[test]
    fn garbage_rejected() {
        assert!(CoiMsg::decode(&[]).is_err());
        assert!(CoiMsg::decode(&[200]).is_err());
        // Truncated LaunchProcess.
        let good = CoiMsg::LaunchProcess {
            name: "x".into(),
            binary_bytes: 1,
            lib_bytes: 1,
            env_count: 0,
            manifest: ComputeManifest::new(1.0, 1, 1),
        }
        .encode();
        assert!(CoiMsg::decode(&good[..good.len() - 2]).is_err());
    }
}

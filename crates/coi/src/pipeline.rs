//! COIPipeline — the offload-mode run-function interface.
//!
//! An offloading compiler/runtime (e.g. the OpenMP `target` runtime the
//! paper names) creates a pipeline on a sink process and enqueues
//! functions against device buffers.  Our pipeline is a thin ordered
//! wrapper over [`CoiProcess::run_function`], tracking enqueue order the
//! way real COI pipelines serialize work.

use vphi_scif::ScifResult;
use vphi_sim_core::{SimDuration, Timeline};

use crate::buffer::CoiBuffer;
use crate::process::CoiProcess;
use crate::protocol::ComputeManifest;

/// The result of one completed pipeline function.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    pub name: String,
    pub ret: u64,
    pub device_time: SimDuration,
}

/// An in-order offload pipeline bound to a process.
pub struct CoiPipeline<'p> {
    process: &'p CoiProcess,
    history: Vec<RunRecord>,
}

impl<'p> CoiPipeline<'p> {
    /// `COIPipelineCreate`.
    pub fn create(process: &'p CoiProcess) -> Self {
        CoiPipeline { process, history: Vec::new() }
    }

    /// `COIPipelineRunFunction`: synchronous variant — returns when the
    /// device completes (COI also offers completion events; the blocking
    /// form is what the offload runtime uses for dependent kernels).
    pub fn run_function(
        &mut self,
        name: &str,
        buffers: &[&CoiBuffer],
        manifest: ComputeManifest,
        tl: &mut Timeline,
    ) -> ScifResult<u64> {
        let (ret, device_time) = self.process.run_function(name, buffers, manifest, tl)?;
        self.history.push(RunRecord { name: name.to_string(), ret, device_time });
        Ok(ret)
    }

    /// Completed functions, in enqueue order.
    pub fn history(&self) -> &[RunRecord] {
        &self.history
    }

    /// Total device time consumed by this pipeline.
    pub fn device_time_total(&self) -> SimDuration {
        self.history.iter().map(|r| r.device_time).sum()
    }
}

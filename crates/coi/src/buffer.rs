//! COIBuffer — a client handle to device memory.

/// A buffer living in the card's GDDR, owned by one process session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoiBuffer {
    id: u64,
    size: u64,
}

impl CoiBuffer {
    pub(crate) fn new(id: u64, size: u64) -> Self {
        CoiBuffer { id, size }
    }

    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn size(&self) -> u64 {
        self.size
    }

    /// Construct a handle with an arbitrary id — only for negative-path
    /// tests that need an id the daemon never issued.
    pub fn new_for_tests(id: u64, size: u64) -> Self {
        CoiBuffer { id, size }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let b = CoiBuffer::new(3, 4096);
        assert_eq!(b.id(), 3);
        assert_eq!(b.size(), 4096);
    }
}

//! The SCIF-connection abstraction COI runs over.
//!
//! The same COI client code must work from the host (native baseline) and
//! from inside a VM (through vPHI) — that equivalence *is* the paper's
//! binary-compatibility property.  [`CoiTransport`] is a connected SCIF
//! endpoint; [`CoiEnv`] knows how to check a card's sysfs and open new
//! connections in each world.

use std::sync::Arc;

use vphi::builder::{VphiHost, VphiVm};
use vphi::frontend::FrontendDriver;
use vphi::guest::GuestScif;
use vphi::sysfs::GuestSysfs;
use vphi_phi::PhiBoard;
use vphi_scif::{NodeId, Port, ScifAddr, ScifEndpoint, ScifFabric, ScifResult};
use vphi_sim_core::Timeline;

/// A connected, bidirectional SCIF channel with both byte-exact and timed
/// bulk lanes.
pub trait CoiTransport: Send + Sync {
    fn send(&self, data: &[u8], tl: &mut Timeline) -> ScifResult<usize>;
    fn recv(&self, out: &mut [u8], tl: &mut Timeline) -> ScifResult<usize>;
    fn send_timed(&self, len: u64, tl: &mut Timeline) -> ScifResult<u64>;
    fn recv_timed(&self, len: u64, tl: &mut Timeline) -> ScifResult<u64>;
    fn close(&self);
}

impl CoiTransport for ScifEndpoint {
    fn send(&self, data: &[u8], tl: &mut Timeline) -> ScifResult<usize> {
        ScifEndpoint::send(self, data, tl)
    }

    fn recv(&self, out: &mut [u8], tl: &mut Timeline) -> ScifResult<usize> {
        ScifEndpoint::recv(self, out, tl)
    }

    fn send_timed(&self, len: u64, tl: &mut Timeline) -> ScifResult<u64> {
        ScifEndpoint::send_timed(self, len, tl)
    }

    fn recv_timed(&self, len: u64, tl: &mut Timeline) -> ScifResult<u64> {
        ScifEndpoint::recv_timed(self, len, tl)
    }

    fn close(&self) {
        ScifEndpoint::close(self)
    }
}

impl CoiTransport for GuestScif {
    fn send(&self, data: &[u8], tl: &mut Timeline) -> ScifResult<usize> {
        GuestScif::send(self, data, tl)
    }

    fn recv(&self, out: &mut [u8], tl: &mut Timeline) -> ScifResult<usize> {
        GuestScif::recv(self, out, tl)
    }

    fn send_timed(&self, len: u64, tl: &mut Timeline) -> ScifResult<u64> {
        GuestScif::send_timed(self, len, tl)
    }

    fn recv_timed(&self, len: u64, tl: &mut Timeline) -> ScifResult<u64> {
        GuestScif::recv_timed(self, len, tl)
    }

    fn close(&self) {
        let mut tl = Timeline::new();
        let _ = GuestScif::close(self, &mut tl);
    }
}

/// A listening endpoint (for symmetric-mode rendezvous).
pub trait CoiListener: Send + Sync {
    /// Block for one inbound connection.
    fn accept(&self, tl: &mut Timeline) -> ScifResult<Box<dyn CoiTransport>>;
    fn close(&self);
}

impl CoiListener for ScifEndpoint {
    fn accept(&self, tl: &mut Timeline) -> ScifResult<Box<dyn CoiTransport>> {
        Ok(Box::new(ScifEndpoint::accept(self, tl)?))
    }

    fn close(&self) {
        ScifEndpoint::close(self)
    }
}

impl CoiListener for GuestScif {
    fn accept(&self, tl: &mut Timeline) -> ScifResult<Box<dyn CoiTransport>> {
        let (conn, _) = GuestScif::accept(self, tl)?;
        Ok(Box::new(conn))
    }

    fn close(&self) {
        let mut tl = Timeline::new();
        let _ = GuestScif::close(self, &mut tl);
    }
}

/// Where COI client code runs: directly on the host, or inside a VM.
pub trait CoiEnv: Send + Sync {
    /// Open a fresh endpoint and connect it to `(node, port)`.
    fn connect(
        &self,
        node: NodeId,
        port: Port,
        tl: &mut Timeline,
    ) -> ScifResult<Box<dyn CoiTransport>>;
    /// Bind + listen on `port` (symmetric-mode rendezvous).
    fn listen(&self, port: Port, tl: &mut Timeline) -> ScifResult<Box<dyn CoiListener>>;
    /// Number of cards visible.
    fn device_count(&self) -> usize;
    /// micnativeloadex's sysfs preflight: is `micN` online x100?
    fn card_usable(&self, mic: u32, tl: &mut Timeline) -> bool;
    /// A short label for reports ("native" / "vm0").
    fn label(&self) -> String;
}

/// The host-side (baseline) environment.
pub struct NativeEnv {
    fabric: Arc<ScifFabric>,
    boards: Vec<Arc<PhiBoard>>,
}

impl NativeEnv {
    pub fn new(host: &VphiHost) -> Self {
        NativeEnv { fabric: Arc::clone(host.fabric()), boards: host.boards().to_vec() }
    }
}

impl CoiEnv for NativeEnv {
    fn connect(
        &self,
        node: NodeId,
        port: Port,
        tl: &mut Timeline,
    ) -> ScifResult<Box<dyn CoiTransport>> {
        let ep = ScifEndpoint::open(&self.fabric, vphi_scif::HOST_NODE)?;
        ep.connect(ScifAddr::new(node, port), tl)?;
        Ok(Box::new(ep))
    }

    fn listen(&self, port: Port, tl: &mut Timeline) -> ScifResult<Box<dyn CoiListener>> {
        let ep = ScifEndpoint::open(&self.fabric, vphi_scif::HOST_NODE)?;
        ep.bind(port, &mut *tl)?;
        ep.listen(16, &mut *tl)?;
        Ok(Box::new(ep))
    }

    fn device_count(&self) -> usize {
        self.boards.len()
    }

    fn card_usable(&self, mic: u32, _tl: &mut Timeline) -> bool {
        self.boards
            .get(mic as usize)
            .map(|b| b.sysfs().get("state") == Some("online"))
            .unwrap_or(false)
    }

    fn label(&self) -> String {
        "native".to_string()
    }
}

/// The in-VM environment (everything goes through vPHI).
pub struct GuestEnv {
    driver: Arc<FrontendDriver>,
    label: String,
}

impl GuestEnv {
    pub fn new(vm: &VphiVm) -> Self {
        GuestEnv { driver: Arc::clone(vm.frontend()), label: format!("vm{}", vm.vm().id()) }
    }
}

impl CoiEnv for GuestEnv {
    fn connect(
        &self,
        node: NodeId,
        port: Port,
        tl: &mut Timeline,
    ) -> ScifResult<Box<dyn CoiTransport>> {
        let ep = GuestScif::open(&self.driver, &mut *tl)?;
        ep.connect(ScifAddr::new(node, port), &mut *tl)?;
        Ok(Box::new(ep))
    }

    fn listen(&self, port: Port, tl: &mut Timeline) -> ScifResult<Box<dyn CoiListener>> {
        let ep = GuestScif::open(&self.driver, &mut *tl)?;
        ep.bind(port, &mut *tl)?;
        ep.listen(16, &mut *tl)?;
        Ok(Box::new(ep))
    }

    fn device_count(&self) -> usize {
        let mut tl = Timeline::new();
        GuestScif::open(&self.driver, &mut tl)
            .and_then(|ep| {
                let n = ep.node_count(&mut tl)?;
                let _ = ep.close(&mut tl);
                Ok(n.saturating_sub(1) as usize)
            })
            .unwrap_or(0)
    }

    fn card_usable(&self, mic: u32, tl: &mut Timeline) -> bool {
        GuestSysfs::fetch(&self.driver, mic, tl).map(|s| s.card_is_usable()).unwrap_or(false)
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

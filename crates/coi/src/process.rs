//! COIProcess — launching a shipped binary on the card and collecting its
//! exit.

use vphi_scif::{ScifError, ScifResult};
use vphi_sim_core::{SimDuration, SpanLabel, Timeline};

use crate::buffer::CoiBuffer;
use crate::engine::CoiEngine;
use crate::protocol::{CoiMsg, ComputeManifest, COI_VERSION};
use crate::transport::CoiTransport;
use crate::wire::{read_frame, write_frame};

/// What a launched binary ships to the card.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchSpec {
    /// Binary name ("dgemm_mic").
    pub name: String,
    /// Binary image size.
    pub binary_bytes: u64,
    /// Total size of dependent shared libraries shipped alongside.
    pub lib_bytes: u64,
    /// Environment variables forwarded (count only; contents are not
    /// semantically relevant to the model).
    pub env_count: u32,
    /// The compute the binary performs once running.
    pub manifest: ComputeManifest,
}

/// The outcome of a completed process.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessExit {
    pub code: i32,
    pub stdout: String,
    pub device_time: SimDuration,
}

/// A live process on the coprocessor (one daemon session).
pub struct CoiProcess {
    conn: Box<dyn CoiTransport>,
    pid: u64,
}

impl std::fmt::Debug for CoiProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoiProcess").field("pid", &self.pid).finish()
    }
}

impl CoiProcess {
    fn send(&self, msg: &CoiMsg, tl: &mut Timeline) -> ScifResult<()> {
        write_frame(self.conn.as_ref(), &msg.encode(), tl)
    }

    fn recv(&self, tl: &mut Timeline) -> ScifResult<CoiMsg> {
        let frame = read_frame(self.conn.as_ref(), tl)?.ok_or(ScifError::ConnReset)?;
        CoiMsg::decode(&frame)
    }

    /// Expect a specific reply kind, surfacing daemon errors.
    fn expect<T>(
        &self,
        tl: &mut Timeline,
        matcher: impl FnOnce(CoiMsg) -> Option<T>,
    ) -> ScifResult<T> {
        match self.recv(tl)? {
            CoiMsg::Error { errno } => {
                Err(ScifError::from_errno(errno).unwrap_or(ScifError::Inval))
            }
            other => matcher(other).ok_or(ScifError::Inval),
        }
    }

    /// `COIProcessCreateFromFile`: handshake, ship binary + libraries,
    /// wait for the daemon to start it.
    pub fn launch(engine: &CoiEngine, spec: &LaunchSpec, tl: &mut Timeline) -> ScifResult<Self> {
        let conn = engine.connect_daemon(tl)?;
        let proc = CoiProcess { conn, pid: 0 };
        proc.send(&CoiMsg::Handshake { version: COI_VERSION }, tl)?;
        proc.expect(tl, |m| match m {
            CoiMsg::HandshakeAck { version: COI_VERSION } => Some(()),
            _ => None,
        })?;
        proc.send(
            &CoiMsg::LaunchProcess {
                name: spec.name.clone(),
                binary_bytes: spec.binary_bytes,
                lib_bytes: spec.lib_bytes,
                env_count: spec.env_count,
                manifest: spec.manifest.clone(),
            },
            tl,
        )?;
        // Bulk: the binary image and its dependency closure.
        proc.conn.send_timed(spec.binary_bytes + spec.lib_bytes, tl)?;
        let pid = proc.expect(tl, |m| match m {
            CoiMsg::ProcessStarted { pid } => Some(pid),
            _ => None,
        })?;
        Ok(CoiProcess { pid, ..proc })
    }

    pub fn pid(&self) -> u64 {
        self.pid
    }

    /// `COIProcessDestroy`-style wait: collect stdout and the exit code.
    /// The device execution time is charged to the caller's timeline —
    /// the caller really did wait for the card.
    pub fn wait(&self, tl: &mut Timeline) -> ScifResult<ProcessExit> {
        let mut stdout = String::new();
        loop {
            match self.recv(tl)? {
                CoiMsg::Stdout { text } => stdout.push_str(&text),
                CoiMsg::ProcessExited { code, device_time_ns } => {
                    let device_time = SimDuration::from_nanos(device_time_ns);
                    tl.charge(SpanLabel::DeviceCompute, device_time);
                    return Ok(ProcessExit { code, stdout, device_time });
                }
                CoiMsg::Error { errno } => {
                    return Err(ScifError::from_errno(errno).unwrap_or(ScifError::Inval));
                }
                _ => return Err(ScifError::Inval),
            }
        }
    }

    // ---- offload-mode operations (used by COIPipeline) ---------------------

    /// `COIBufferCreate`.
    pub fn create_buffer(&self, size: u64, tl: &mut Timeline) -> ScifResult<CoiBuffer> {
        self.send(&CoiMsg::CreateBuffer { size }, tl)?;
        let id = self.expect(tl, |m| match m {
            CoiMsg::BufferCreated { id } => Some(id),
            _ => None,
        })?;
        Ok(CoiBuffer::new(id, size))
    }

    /// `COIBufferWrite` (bulk on the timed lane).
    pub fn write_buffer(&self, buf: &CoiBuffer, size: u64, tl: &mut Timeline) -> ScifResult<()> {
        if size > buf.size() {
            return Err(ScifError::Inval);
        }
        self.send(&CoiMsg::WriteBuffer { id: buf.id(), size }, tl)?;
        self.conn.send_timed(size, tl)?;
        self.expect(tl, |m| match m {
            CoiMsg::WriteAck => Some(()),
            _ => None,
        })
    }

    /// `COIBufferRead`.
    pub fn read_buffer(&self, buf: &CoiBuffer, size: u64, tl: &mut Timeline) -> ScifResult<u64> {
        if size > buf.size() {
            return Err(ScifError::Inval);
        }
        self.send(&CoiMsg::ReadBuffer { id: buf.id(), size }, tl)?;
        let n = self.expect(tl, |m| match m {
            CoiMsg::ReadReady { size } => Some(size),
            _ => None,
        })?;
        self.conn.recv_timed(n, tl)?;
        Ok(n)
    }

    /// `COIPipelineRunFunction` (the pipeline wrapper calls this).
    pub fn run_function(
        &self,
        name: &str,
        buffers: &[&CoiBuffer],
        manifest: ComputeManifest,
        tl: &mut Timeline,
    ) -> ScifResult<(u64, SimDuration)> {
        self.send(
            &CoiMsg::RunFunction {
                name: name.to_string(),
                buffer_ids: buffers.iter().map(|b| b.id()).collect(),
                manifest,
            },
            tl,
        )?;
        let (ret, ns) = self.expect(tl, |m| match m {
            CoiMsg::FunctionDone { ret, device_time_ns } => Some((ret, device_time_ns)),
            _ => None,
        })?;
        let dur = SimDuration::from_nanos(ns);
        tl.charge(SpanLabel::DeviceCompute, dur);
        Ok((ret, dur))
    }

    /// `COIBufferDestroy`.
    pub fn destroy_buffer(&self, buf: CoiBuffer, tl: &mut Timeline) -> ScifResult<()> {
        self.send(&CoiMsg::DestroyBuffer { id: buf.id() }, tl)?;
        self.expect(tl, |m| match m {
            CoiMsg::WriteAck => Some(()),
            _ => None,
        })
    }

    /// Tear the session down.
    pub fn destroy(self) {
        self.conn.close();
    }
}

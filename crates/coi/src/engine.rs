//! COIEngine — device enumeration and daemon connections.

use std::sync::Arc;

use vphi_scif::{NodeId, ScifError, ScifResult};
use vphi_sim_core::Timeline;

use crate::daemon::CoiDaemon;
use crate::transport::{CoiEnv, CoiTransport};

/// A handle to one coprocessor's COI service, in either environment.
pub struct CoiEngine {
    env: Arc<dyn CoiEnv>,
    mic: usize,
}

impl std::fmt::Debug for CoiEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoiEngine").field("mic", &self.mic).finish()
    }
}

impl CoiEngine {
    /// `COIEngineGetCount` + `COIEngineGetHandle`: bind to card `mic`.
    pub fn get(env: Arc<dyn CoiEnv>, mic: usize) -> ScifResult<CoiEngine> {
        if mic >= env.device_count() {
            return Err(ScifError::NoDev);
        }
        Ok(CoiEngine { env, mic })
    }

    /// Number of cards visible in this environment.
    pub fn count(env: &dyn CoiEnv) -> usize {
        env.device_count()
    }

    pub fn mic(&self) -> usize {
        self.mic
    }

    pub fn env(&self) -> &Arc<dyn CoiEnv> {
        &self.env
    }

    /// SCIF node of this engine's card.
    pub fn node(&self) -> NodeId {
        NodeId(self.mic as u16 + 1)
    }

    /// Open a fresh connection to the card's coi_daemon.
    pub fn connect_daemon(&self, tl: &mut Timeline) -> ScifResult<Box<dyn CoiTransport>> {
        self.env.connect(self.node(), CoiDaemon::port(self.mic), tl)
    }
}

//! COI end-to-end: the same client code against the daemon from the host
//! (native) and from inside a VM (through vPHI) — the compatibility
//! property the paper claims for everything layered on SCIF.

use std::sync::Arc;

use vphi::builder::{VmConfig, VphiHost};
use vphi_coi::pipeline::CoiPipeline;
use vphi_coi::process::LaunchSpec;
use vphi_coi::transport::CoiEnv;
use vphi_coi::{CoiDaemon, CoiEngine, CoiProcess, ComputeManifest, GuestEnv, NativeEnv};
use vphi_sim_core::{SimDuration, Timeline};

fn dgemm_spec(n: u64, threads: u32) -> LaunchSpec {
    LaunchSpec {
        name: "dgemm_mic".into(),
        binary_bytes: 1 << 20,
        lib_bytes: 140 << 20,
        env_count: 2,
        manifest: ComputeManifest::new(2.0 * (n as f64).powi(3), 3 * n * n * 8, threads),
    }
}

#[test]
fn native_launch_runs_and_reports() {
    let host = VphiHost::new(1);
    let daemon = CoiDaemon::spawn(&host, 0).unwrap();
    let env: Arc<dyn CoiEnv> = Arc::new(NativeEnv::new(&host));
    assert_eq!(CoiEngine::count(env.as_ref()), 1);
    let engine = CoiEngine::get(Arc::clone(&env), 0).unwrap();

    let mut tl = Timeline::new();
    assert!(env.card_usable(0, &mut tl));
    let proc = CoiProcess::launch(&engine, &dgemm_spec(2048, 224), &mut tl).unwrap();
    assert!(proc.pid() >= 100);
    let exit = proc.wait(&mut tl).unwrap();
    assert_eq!(exit.code, 0);
    assert!(exit.stdout.contains("dgemm_mic"));
    assert!(exit.device_time > SimDuration::ZERO);
    // The caller's timeline includes the device execution.
    assert!(tl.total() >= exit.device_time);
    proc.destroy();
    assert_eq!(daemon.launch_count(), 1);
    daemon.shutdown();
}

#[test]
fn guest_launch_through_vphi_is_identical_but_slower() {
    let host = VphiHost::new(1);
    let daemon = CoiDaemon::spawn(&host, 0).unwrap();

    // Native reference.
    let native_env: Arc<dyn CoiEnv> = Arc::new(NativeEnv::new(&host));
    let engine = CoiEngine::get(Arc::clone(&native_env), 0).unwrap();
    let mut native_tl = Timeline::new();
    let proc = CoiProcess::launch(&engine, &dgemm_spec(1024, 112), &mut native_tl).unwrap();
    let native_exit = proc.wait(&mut native_tl).unwrap();
    proc.destroy();

    // Same client logic, inside a VM.
    let vm = host.spawn_vm(VmConfig::default());
    let guest_env: Arc<dyn CoiEnv> = Arc::new(GuestEnv::new(&vm));
    assert_eq!(guest_env.device_count(), 1);
    let mut tl = Timeline::new();
    assert!(guest_env.card_usable(0, &mut tl));
    let engine = CoiEngine::get(Arc::clone(&guest_env), 0).unwrap();
    let mut guest_tl = Timeline::new();
    let proc = CoiProcess::launch(&engine, &dgemm_spec(1024, 112), &mut guest_tl).unwrap();
    let guest_exit = proc.wait(&mut guest_tl).unwrap();
    proc.destroy();

    // Functional equivalence…
    assert_eq!(guest_exit.code, 0);
    assert_eq!(guest_exit.device_time, native_exit.device_time, "on-device time identical");
    assert_eq!(guest_exit.stdout, native_exit.stdout);
    // …with virtualization cost on the total.
    assert!(
        guest_tl.total() > native_tl.total(),
        "vPHI launch must cost more: {} vs {}",
        guest_tl.total(),
        native_tl.total()
    );

    vm.shutdown();
    daemon.shutdown();
}

#[test]
fn offload_buffers_and_run_function() {
    let host = VphiHost::new(1);
    let daemon = CoiDaemon::spawn(&host, 0).unwrap();
    let env: Arc<dyn CoiEnv> = Arc::new(NativeEnv::new(&host));
    let engine = CoiEngine::get(env, 0).unwrap();

    let mut tl = Timeline::new();
    // A sink process (no main work — it hosts offloaded functions).
    let spec = LaunchSpec {
        name: "offload_main_mic".into(),
        binary_bytes: 512 << 10,
        lib_bytes: 20 << 20,
        env_count: 0,
        manifest: ComputeManifest::new(0.0, 0, 1),
    };
    let proc = CoiProcess::launch(&engine, &spec, &mut tl).unwrap();

    let a = proc.create_buffer(64 << 20, &mut tl).unwrap();
    let b = proc.create_buffer(64 << 20, &mut tl).unwrap();
    let c = proc.create_buffer(64 << 20, &mut tl).unwrap();
    proc.write_buffer(&a, 64 << 20, &mut tl).unwrap();
    proc.write_buffer(&b, 64 << 20, &mut tl).unwrap();

    let mut pipeline = CoiPipeline::create(&proc);
    let n = 2048u64;
    let ret = pipeline
        .run_function(
            "offload_dgemm",
            &[&a, &b, &c],
            ComputeManifest::new(2.0 * (n as f64).powi(3), 3 * n * n * 8, 224),
            &mut tl,
        )
        .unwrap();
    assert_eq!(ret, 0);
    assert_eq!(pipeline.history().len(), 1);
    assert!(pipeline.device_time_total() > SimDuration::ZERO);

    assert_eq!(proc.read_buffer(&c, 64 << 20, &mut tl).unwrap(), 64 << 20);
    proc.destroy_buffer(a, &mut tl).unwrap();
    proc.destroy_buffer(b, &mut tl).unwrap();
    proc.destroy_buffer(c, &mut tl).unwrap();
    proc.destroy();
    daemon.shutdown();
}

#[test]
fn daemon_rejects_bad_version_and_bad_buffers() {
    let host = VphiHost::new(1);
    let daemon = CoiDaemon::spawn(&host, 0).unwrap();
    let env: Arc<dyn CoiEnv> = Arc::new(NativeEnv::new(&host));
    let engine = CoiEngine::get(env, 0).unwrap();

    let mut tl = Timeline::new();
    // Valid session, invalid buffer id.
    let spec = LaunchSpec {
        name: "noop".into(),
        binary_bytes: 1024,
        lib_bytes: 0,
        env_count: 0,
        manifest: ComputeManifest::new(0.0, 0, 1),
    };
    let proc = CoiProcess::launch(&engine, &spec, &mut tl).unwrap();
    let bogus = vphi_coi::buffer::CoiBuffer::new_for_tests(999, 4096);
    assert!(proc.write_buffer(&bogus, 1, &mut tl).is_err());
    proc.destroy();

    // Unknown mic index.
    let env2: Arc<dyn CoiEnv> = Arc::new(NativeEnv::new(&host));
    assert!(CoiEngine::get(env2, 5).is_err());
    daemon.shutdown();
}

#[test]
fn multiple_vms_share_one_daemon() {
    let host = VphiHost::new(1);
    let daemon = CoiDaemon::spawn(&host, 0).unwrap();
    let vms: Vec<_> = (0..3).map(|_| host.spawn_vm(VmConfig::default())).collect();

    let mut handles = Vec::new();
    for vm in &vms {
        let env: Arc<dyn CoiEnv> = Arc::new(GuestEnv::new(vm));
        handles.push(std::thread::spawn(move || {
            let engine = CoiEngine::get(env, 0).unwrap();
            let mut tl = Timeline::new();
            let proc = CoiProcess::launch(&engine, &dgemm_spec(512, 56), &mut tl).unwrap();
            let exit = proc.wait(&mut tl).unwrap();
            proc.destroy();
            exit.code
        }));
    }
    for h in handles {
        assert_eq!(h.join().unwrap(), 0);
    }
    assert_eq!(daemon.launch_count(), 3);
    for vm in &vms {
        vm.shutdown();
    }
    daemon.shutdown();
}

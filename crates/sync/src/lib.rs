//! Instrumented synchronization primitives for the vPHI workspace.
//!
//! Every lock in the stack is a [`TrackedMutex`] / [`TrackedRwLock`]
//! declared with a [`LockClass`].  Acquisitions feed a per-thread held-lock
//! stack and a global class-level lock-order graph (see [`audit`]), which
//! detects — at the moment the second lock is taken, no real deadlock
//! needed:
//!
//! * **order cycles** (an ABBA pattern between two lock classes),
//! * **layer inversions** (taking an outer-layer lock while holding an
//!   inner-layer one — e.g. a `scif` fabric lock under a `virtio` queue
//!   lock),
//! * **same-class nesting** (two mutexes of one class on one thread),
//! * **locks held across a `sim-core` virtual-clock advance** (via
//!   [`audit::assert_lockless`], called by `VirtualClock`).
//!
//! Violations panic with both acquisition sites in debug/test builds; the
//! `sync-audit` feature turns the same checks on in release builds.  When
//! neither is active the wrappers compile down to the plain `parking_lot`
//! primitives.
//!
//! Poisoning: `lock()` **is** the poison-recovering acquire (it delegates
//! to [`TrackedMutex::lock_or_recover`]); a panicking thread never poisons
//! a lock for the rest of a stress test.  `lock().unwrap()` is therefore
//! both unnecessary and banned by `cargo run -p xtask -- lint`.

use std::ops::{Deref, DerefMut};
use std::panic::Location;
use std::time::Duration;

pub mod audit;

pub use parking_lot::WaitTimeoutResult;

use audit::{AcqKind, Token};

/// Every lock in the workspace belongs to a class; the class's **layer**
/// encodes the documented acquisition order (DESIGN.md #12): a thread may
/// only acquire locks of a layer **greater than or equal to** the layers
/// it already holds (outer layers first).  Same-layer classes are allowed
/// to interleave either way; the dynamic order graph still rejects cycles
/// between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum LockClass {
    // --- VMM control plane (outermost) ---
    /// `vmm::Vm` device list.
    VmDevices = 0,
    /// `vmm::KvmModule` VMA table.
    KvmVmas = 1,
    /// `vmm::KvmModule` resolved-page set.
    KvmResolved = 2,
    /// `vmm::KvmModule` fault counter.
    KvmFaults = 3,
    // --- host-side service threads ---
    /// Backend / daemon service-thread join handles.
    BackendWorker = 4,
    /// micnetd / COI daemon accept-thread handle.
    ServerAccept = 5,
    /// micnetd / COI daemon session-thread list.
    ServerSessions = 6,
    /// Backend guest-epd → endpoint table.
    BackendEndpoints = 7,
    /// Backend mmap-handle table.
    BackendMmaps = 8,
    /// Backend registered-window bookkeeping.
    BackendWindows = 9,
    /// Backend RMA registration cache.
    RegCache = 10,
    // --- SCIF fabric ---
    /// Fabric node registry.
    FabricNodes = 11,
    /// Endpoint state machine.
    EndpointState = 12,
    /// Endpoint local port.
    EpPort = 13,
    /// Endpoint listener slot.
    EpListener = 14,
    /// Per-node bound-port map.
    NodePorts = 15,
    /// Listener pending-connection backlog.
    ListenerPending = 16,
    /// Fabric activity hub (wake-any version counter).
    ActivityHub = 17,
    /// SCIF message queue ring state.
    MsgQueue = 18,
    /// Endpoint registered-window table.
    WindowTable = 19,
    /// Endpoint RMA fence-marker counter.
    RmaMarker = 20,
    /// Endpoint pending async-RMA completions.
    RmaPending = 21,
    // --- Phi device ---
    /// Board lifecycle state.
    BoardState = 22,
    /// Board sysfs attribute map.
    BoardSysfs = 23,
    /// GDDR allocator region table.
    PhiMemTable = 24,
    // --- virtio / interrupt delivery ---
    /// Virtqueue ring state.
    VirtQueueState = 25,
    /// PCIe doorbell state.
    Doorbell = 26,
    /// Virtqueue IRQ-callback slot (held while the callback runs).
    VirtioIrq = 27,
    /// Per-VM IRQ-chip vector map.
    IrqVectors = 28,
    /// MSI vector handler chain.
    MsiHandlers = 29,
    /// Guest wake-all wait queue (predicates run under this lock).
    WaitQueue = 30,
    // --- frontend driver ---
    /// Frontend head → in-flight request table.
    FrontendInflight = 31,
    /// Frontend token → completed reply table.
    FrontendCompleted = 32,
    /// Frontend per-driver counters.
    FrontendStats = 33,
    /// Frontend preallocated header slots.
    FrontendSlots = 34,
    // --- byte-storage leaves (innermost real locks) ---
    /// Pinned user/guest pages (`scif::PinnedBuf`).
    PinnedBuf = 35,
    /// GDDR region backing bytes.
    PhiMemData = 36,
    /// Guest physical-memory arena.
    GuestMemState = 37,
    /// VMA test/backing byte buffers.
    VmaData = 38,
    // --- test-only classes (isolated from the real hierarchy) ---
    /// Regression tests: an outer-layer test lock.
    TestOuter = 39,
    /// Regression tests: ABBA partner A.
    TestA = 40,
    /// Regression tests: ABBA partner B.
    TestB = 41,
    /// Regression tests: an inner-layer test lock.
    TestInner = 42,
    // --- host control plane (outermost; added for card-reset recovery) ---
    /// `VphiHost` attached-backend registry, walked during card reset.
    HostAttached = 43,
    // --- tracing leaves (vphi-trace; taken with arbitrary locks held
    // *released*, never while inside another tracked section) ---
    /// Tracer span rings + request summaries.
    TraceRings = 44,
    /// Tracer latency histograms.
    TraceHists = 45,
    // --- multi-queue transport (PR 5) ---
    /// Backend shard-thread join handles (one service thread per queue).
    BackendShards = 46,
    /// Frontend shared re-kick backoff RNG (seeded, jittered).
    FrontendBackoff = 47,
    // --- adaptive completion notification (PR 6) ---
    /// Per-token wait-queue registry (token → slot map).
    TokenWaiters = 48,
    /// One sleeping requester's slot (signal count + condvar).
    TokenSlot = 49,
    /// Per-lane notifier batch state (pending-completion counter).
    LaneNotifier = 50,
    /// Frontend spin-budget policy (EWMA table + busy-poll set).
    NotifyPolicy = 51,
    // --- async submission (PR 9) ---
    /// Frontend token → pending submission table (SQ/CQ bookkeeping).
    FrontendPending = 52,
    // --- zero-copy RMA (PR 10) ---
    /// Device-aperture window-mapping table (`pcie::ApertureMap`).
    ApertureWindows = 53,
}

impl LockClass {
    /// Number of classes (adjacency bitmasks are `u64`, so this must stay
    /// ≤ 64).
    pub const COUNT: usize = 54;

    /// Every class, in discriminant order — the hierarchy exported **as
    /// data** so offline tools (`vphi-analyze`) can consume the same
    /// class/layer table the runtime detector enforces, instead of
    /// re-declaring it and drifting.
    pub const ALL: [LockClass; LockClass::COUNT] = [
        LockClass::VmDevices,
        LockClass::KvmVmas,
        LockClass::KvmResolved,
        LockClass::KvmFaults,
        LockClass::BackendWorker,
        LockClass::ServerAccept,
        LockClass::ServerSessions,
        LockClass::BackendEndpoints,
        LockClass::BackendMmaps,
        LockClass::BackendWindows,
        LockClass::RegCache,
        LockClass::FabricNodes,
        LockClass::EndpointState,
        LockClass::EpPort,
        LockClass::EpListener,
        LockClass::NodePorts,
        LockClass::ListenerPending,
        LockClass::ActivityHub,
        LockClass::MsgQueue,
        LockClass::WindowTable,
        LockClass::RmaMarker,
        LockClass::RmaPending,
        LockClass::BoardState,
        LockClass::BoardSysfs,
        LockClass::PhiMemTable,
        LockClass::VirtQueueState,
        LockClass::Doorbell,
        LockClass::VirtioIrq,
        LockClass::IrqVectors,
        LockClass::MsiHandlers,
        LockClass::WaitQueue,
        LockClass::FrontendInflight,
        LockClass::FrontendCompleted,
        LockClass::FrontendStats,
        LockClass::FrontendSlots,
        LockClass::PinnedBuf,
        LockClass::PhiMemData,
        LockClass::GuestMemState,
        LockClass::VmaData,
        LockClass::TestOuter,
        LockClass::TestA,
        LockClass::TestB,
        LockClass::TestInner,
        LockClass::HostAttached,
        LockClass::TraceRings,
        LockClass::TraceHists,
        LockClass::BackendShards,
        LockClass::FrontendBackoff,
        LockClass::TokenWaiters,
        LockClass::TokenSlot,
        LockClass::LaneNotifier,
        LockClass::NotifyPolicy,
        LockClass::FrontendPending,
        LockClass::ApertureWindows,
    ];

    /// The class's source-level name, exactly as it is spelled at
    /// declaration sites (`LockClass::VmDevices` → `"VmDevices"`), so a
    /// source scanner can map the identifier back to the class.
    pub const fn name(self) -> &'static str {
        match self {
            LockClass::VmDevices => "VmDevices",
            LockClass::KvmVmas => "KvmVmas",
            LockClass::KvmResolved => "KvmResolved",
            LockClass::KvmFaults => "KvmFaults",
            LockClass::BackendWorker => "BackendWorker",
            LockClass::ServerAccept => "ServerAccept",
            LockClass::ServerSessions => "ServerSessions",
            LockClass::BackendEndpoints => "BackendEndpoints",
            LockClass::BackendMmaps => "BackendMmaps",
            LockClass::BackendWindows => "BackendWindows",
            LockClass::RegCache => "RegCache",
            LockClass::FabricNodes => "FabricNodes",
            LockClass::EndpointState => "EndpointState",
            LockClass::EpPort => "EpPort",
            LockClass::EpListener => "EpListener",
            LockClass::NodePorts => "NodePorts",
            LockClass::ListenerPending => "ListenerPending",
            LockClass::ActivityHub => "ActivityHub",
            LockClass::MsgQueue => "MsgQueue",
            LockClass::WindowTable => "WindowTable",
            LockClass::RmaMarker => "RmaMarker",
            LockClass::RmaPending => "RmaPending",
            LockClass::BoardState => "BoardState",
            LockClass::BoardSysfs => "BoardSysfs",
            LockClass::PhiMemTable => "PhiMemTable",
            LockClass::VirtQueueState => "VirtQueueState",
            LockClass::Doorbell => "Doorbell",
            LockClass::VirtioIrq => "VirtioIrq",
            LockClass::IrqVectors => "IrqVectors",
            LockClass::MsiHandlers => "MsiHandlers",
            LockClass::WaitQueue => "WaitQueue",
            LockClass::FrontendInflight => "FrontendInflight",
            LockClass::FrontendCompleted => "FrontendCompleted",
            LockClass::FrontendStats => "FrontendStats",
            LockClass::FrontendSlots => "FrontendSlots",
            LockClass::PinnedBuf => "PinnedBuf",
            LockClass::PhiMemData => "PhiMemData",
            LockClass::GuestMemState => "GuestMemState",
            LockClass::VmaData => "VmaData",
            LockClass::TestOuter => "TestOuter",
            LockClass::TestA => "TestA",
            LockClass::TestB => "TestB",
            LockClass::TestInner => "TestInner",
            LockClass::HostAttached => "HostAttached",
            LockClass::TraceRings => "TraceRings",
            LockClass::TraceHists => "TraceHists",
            LockClass::BackendShards => "BackendShards",
            LockClass::FrontendBackoff => "FrontendBackoff",
            LockClass::TokenWaiters => "TokenWaiters",
            LockClass::TokenSlot => "TokenSlot",
            LockClass::LaneNotifier => "LaneNotifier",
            LockClass::NotifyPolicy => "NotifyPolicy",
            LockClass::FrontendPending => "FrontendPending",
            LockClass::ApertureWindows => "ApertureWindows",
        }
    }

    /// The class's layer in the documented hierarchy — smaller layers are
    /// acquired first (outermost).
    pub const fn layer(self) -> u8 {
        match self {
            LockClass::VmDevices => 10,
            LockClass::KvmVmas => 12,
            LockClass::KvmResolved => 14,
            LockClass::KvmFaults => 16,
            LockClass::BackendWorker => 20,
            LockClass::ServerAccept => 20,
            LockClass::ServerSessions => 22,
            LockClass::BackendEndpoints => 24,
            LockClass::BackendMmaps => 24,
            LockClass::BackendWindows => 26,
            LockClass::RegCache => 28,
            LockClass::FabricNodes => 30,
            LockClass::EndpointState => 32,
            LockClass::EpPort => 34,
            LockClass::EpListener => 34,
            LockClass::NodePorts => 36,
            LockClass::ListenerPending => 38,
            LockClass::ActivityHub => 40,
            LockClass::MsgQueue => 42,
            LockClass::WindowTable => 44,
            LockClass::RmaMarker => 46,
            LockClass::RmaPending => 48,
            LockClass::BoardState => 50,
            LockClass::BoardSysfs => 52,
            LockClass::PhiMemTable => 54,
            LockClass::VirtQueueState => 60,
            LockClass::Doorbell => 62,
            LockClass::VirtioIrq => 64,
            LockClass::IrqVectors => 66,
            LockClass::MsiHandlers => 68,
            LockClass::WaitQueue => 70,
            LockClass::FrontendInflight => 72,
            LockClass::FrontendCompleted => 74,
            LockClass::FrontendStats => 76,
            LockClass::FrontendSlots => 78,
            LockClass::PinnedBuf => 80,
            LockClass::PhiMemData => 82,
            LockClass::GuestMemState => 84,
            LockClass::VmaData => 86,
            LockClass::TestOuter => 90,
            LockClass::TestA => 92,
            LockClass::TestB => 92,
            LockClass::TestInner => 94,
            LockClass::HostAttached => 8,
            LockClass::TraceRings => 87,
            LockClass::TraceHists => 88,
            LockClass::BackendShards => 20,
            LockClass::FrontendBackoff => 79,
            LockClass::TokenWaiters => 71,
            LockClass::TokenSlot => 72,
            LockClass::LaneNotifier => 69,
            LockClass::NotifyPolicy => 77,
            // Between the inflight table (72) and the completed table
            // (74): never held across a wait or another frontend lock.
            LockClass::FrontendPending => 73,
            // Between the registration cache (28) and the fabric (30):
            // the backend maps/unmaps after the cache probe and before
            // replaying the SCIF op.
            LockClass::ApertureWindows => 29,
        }
    }

    /// Dense index (= discriminant); used by the runtime audit graph and
    /// by the offline `vphi-analyze` lock-order pass.
    pub const fn index(self) -> usize {
        self as usize
    }
}

// ---------------------------------------------------------------- Mutex

/// A mutex that reports its acquisitions to the lock-order audit.
pub struct TrackedMutex<T: ?Sized> {
    class: LockClass,
    inner: parking_lot::Mutex<T>,
}

impl<T> TrackedMutex<T> {
    pub const fn new(class: LockClass, value: T) -> Self {
        TrackedMutex { class, inner: parking_lot::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> TrackedMutex<T> {
    pub fn class(&self) -> LockClass {
        self.class
    }

    /// Acquire, recovering from poisoning.  Delegates to
    /// [`lock_or_recover`](TrackedMutex::lock_or_recover); kept as the
    /// idiomatic spelling so the 170 existing call sites read unchanged.
    #[track_caller]
    pub fn lock(&self) -> TrackedMutexGuard<'_, T> {
        self.lock_or_recover()
    }

    /// The poison-recovering acquire: a panic on another thread while it
    /// held this mutex does not cascade into this caller (the underlying
    /// primitive strips `PoisonError`), and the acquisition is checked
    /// against the lock-order graph before blocking.
    #[track_caller]
    pub fn lock_or_recover(&self) -> TrackedMutexGuard<'_, T> {
        let token = audit::on_acquire(self.class, AcqKind::Exclusive, Location::caller());
        TrackedMutexGuard { inner: self.inner.lock(), class: self.class, token }
    }

    #[track_caller]
    pub fn try_lock(&self) -> Option<TrackedMutexGuard<'_, T>> {
        let inner = self.inner.try_lock()?;
        let token = audit::on_acquire(self.class, AcqKind::Exclusive, Location::caller());
        Some(TrackedMutexGuard { inner, class: self.class, token })
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for TrackedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.try_lock() {
            Some(g) => f.debug_struct("TrackedMutex").field("data", &&*g).finish(),
            None => f.write_str("TrackedMutex { <locked> }"),
        }
    }
}

pub struct TrackedMutexGuard<'a, T: ?Sized> {
    inner: parking_lot::MutexGuard<'a, T>,
    class: LockClass,
    token: Token,
}

impl<T: ?Sized> Deref for TrackedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for TrackedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for TrackedMutexGuard<'_, T> {
    fn drop(&mut self) {
        audit::on_release(self.token);
    }
}

// -------------------------------------------------------------- Condvar

/// A condition variable usable with [`TrackedMutex`].  The held-lock token
/// is dropped for the duration of the wait (the mutex is released) and
/// re-registered — re-running the order checks — on wakeup.
#[derive(Default)]
pub struct TrackedCondvar {
    inner: parking_lot::Condvar,
}

impl TrackedCondvar {
    pub const fn new() -> Self {
        TrackedCondvar { inner: parking_lot::Condvar::new() }
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one()
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all()
    }

    #[track_caller]
    pub fn wait<T>(&self, guard: &mut TrackedMutexGuard<'_, T>) {
        let site = Location::caller();
        audit::on_release(guard.token);
        self.inner.wait(&mut guard.inner);
        guard.token = audit::on_acquire(guard.class, AcqKind::Exclusive, site);
    }

    #[track_caller]
    pub fn wait_for<T>(
        &self,
        guard: &mut TrackedMutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let site = Location::caller();
        audit::on_release(guard.token);
        let result = self.inner.wait_for(&mut guard.inner, timeout);
        guard.token = audit::on_acquire(guard.class, AcqKind::Exclusive, site);
        result
    }
}

impl std::fmt::Debug for TrackedCondvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TrackedCondvar { .. }")
    }
}

// --------------------------------------------------------------- RwLock

/// A reader-writer lock that reports its acquisitions to the audit.
/// Shared (read) acquisitions of one class may nest; exclusive ones may
/// not.
pub struct TrackedRwLock<T: ?Sized> {
    class: LockClass,
    inner: parking_lot::RwLock<T>,
}

impl<T> TrackedRwLock<T> {
    pub const fn new(class: LockClass, value: T) -> Self {
        TrackedRwLock { class, inner: parking_lot::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> TrackedRwLock<T> {
    pub fn class(&self) -> LockClass {
        self.class
    }

    #[track_caller]
    pub fn read(&self) -> TrackedRwLockReadGuard<'_, T> {
        let token = audit::on_acquire(self.class, AcqKind::Shared, Location::caller());
        TrackedRwLockReadGuard { inner: self.inner.read(), token }
    }

    #[track_caller]
    pub fn write(&self) -> TrackedRwLockWriteGuard<'_, T> {
        let token = audit::on_acquire(self.class, AcqKind::Exclusive, Location::caller());
        TrackedRwLockWriteGuard { inner: self.inner.write(), token }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: ?Sized> std::fmt::Debug for TrackedRwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TrackedRwLock { .. }")
    }
}

pub struct TrackedRwLockReadGuard<'a, T: ?Sized> {
    inner: parking_lot::RwLockReadGuard<'a, T>,
    token: Token,
}

impl<T: ?Sized> Deref for TrackedRwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for TrackedRwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        audit::on_release(self.token);
    }
}

pub struct TrackedRwLockWriteGuard<'a, T: ?Sized> {
    inner: parking_lot::RwLockWriteGuard<'a, T>,
    token: Token,
}

impl<T: ?Sized> Deref for TrackedRwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for TrackedRwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for TrackedRwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        audit::on_release(self.token);
    }
}

#[cfg(test)]
mod class_table_tests {
    use super::LockClass;

    #[test]
    fn all_covers_every_index_once() {
        let mut seen = [false; LockClass::COUNT];
        for c in LockClass::ALL {
            assert!(!seen[c.index()], "duplicate class {}", c.name());
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s), "ALL is missing a class");
        for (i, c) in LockClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i, "ALL out of discriminant order at {i}");
        }
    }

    #[test]
    fn names_are_unique_and_nonempty() {
        let mut names: Vec<&str> = LockClass::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate class name");
        assert!(names.iter().all(|n| !n.is_empty()));
    }
}

//! The lock-order audit: per-thread held stacks, the global class-level
//! order graph, cycle/layer/nesting checks and the counters surfaced in
//! `VphiDebugReport`.
//!
//! Active in debug/test builds and, in release, behind the `sync-audit`
//! feature.  Inactive builds compile every entry point to a no-op.

/// Opaque handle for one registered acquisition; returned by
/// [`on_acquire`] and redeemed by [`on_release`].
#[derive(Debug, Clone, Copy)]
pub struct Token(#[allow(dead_code)] u64);

/// How a lock was taken — shared acquisitions of one class may nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcqKind {
    Exclusive,
    Shared,
}

/// Snapshot of the audit counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SyncStats {
    /// Tracked lock acquisitions (mutex, rwlock and condvar re-acquires).
    pub acquisitions: u64,
    /// Deepest held-lock stack observed on any thread.
    pub max_hold_depth: u64,
    /// Distinct class-order edges recorded in the global graph.
    pub order_edges: u64,
    /// Acquisitions that ran the order checks (≥ 1 lock already held).
    pub cycle_checks: u64,
    /// Violations reported outside of test capture.
    pub violations: u64,
}

#[cfg(any(debug_assertions, feature = "sync-audit"))]
mod imp {
    use super::{AcqKind, SyncStats, Token};
    use crate::LockClass;
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::panic::Location;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex as StdMutex;

    const NCLASS: usize = LockClass::COUNT;

    struct Held {
        class: LockClass,
        kind: AcqKind,
        site: &'static Location<'static>,
        slot: u64,
    }

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
        static CAPTURE: RefCell<Option<Vec<String>>> = const { RefCell::new(None) };
    }

    // Global order graph: EDGES[a] bit b set ⇔ some thread acquired class
    // b while holding class a.  First-seen acquisition sites per edge live
    // in EDGE_SITES for diagnostics.  (The audit's own lock is a raw
    // std::sync::Mutex on purpose — tracking it would recurse.)
    static EDGES: [AtomicU64; NCLASS] = [const { AtomicU64::new(0) }; NCLASS];
    type SiteMap = HashMap<(u8, u8), (&'static Location<'static>, &'static Location<'static>)>;
    static EDGE_SITES: StdMutex<Option<SiteMap>> = StdMutex::new(None);

    static ACQUISITIONS: AtomicU64 = AtomicU64::new(0);
    static MAX_DEPTH: AtomicU64 = AtomicU64::new(0);
    static ORDER_EDGES: AtomicU64 = AtomicU64::new(0);
    static CYCLE_CHECKS: AtomicU64 = AtomicU64::new(0);
    static VIOLATIONS: AtomicU64 = AtomicU64::new(0);
    static NEXT_SLOT: AtomicU64 = AtomicU64::new(1);

    fn report(msg: String) {
        let captured = CAPTURE.with(|c| {
            if let Some(sink) = c.borrow_mut().as_mut() {
                sink.push(msg.clone());
                true
            } else {
                false
            }
        });
        if !captured {
            VIOLATIONS.fetch_add(1, Ordering::Relaxed);
            panic!("vphi-sync lock-order violation: {msg}");
        }
    }

    fn edge_sites(from: LockClass, to: LockClass) -> String {
        let guard = EDGE_SITES.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match guard.as_ref().and_then(|m| m.get(&(from as u8, to as u8))) {
            Some((a, b)) => format!("{from:?} at {a} then {to:?} at {b}"),
            None => format!("{from:?} then {to:?} (sites unrecorded)"),
        }
    }

    /// Depth-first reachability over the edge bitmasks.
    fn reaches(from: usize, target: usize, visited: &mut u64) -> bool {
        if from == target {
            return true;
        }
        if *visited & (1 << from) != 0 {
            return false;
        }
        *visited |= 1 << from;
        let mut succ = EDGES[from].load(Ordering::Acquire);
        while succ != 0 {
            let next = succ.trailing_zeros() as usize;
            succ &= succ - 1;
            if reaches(next, target, visited) {
                return true;
            }
        }
        false
    }

    fn record_edge(held: &Held, class: LockClass, site: &'static Location<'static>) {
        let from = held.class.index();
        let to = class.index();
        let prev = EDGES[from].fetch_or(1 << to, Ordering::AcqRel);
        if prev & (1 << to) != 0 {
            return; // edge already known; graph unchanged, no new cycle.
        }
        ORDER_EDGES.fetch_add(1, Ordering::Relaxed);
        {
            let mut guard = EDGE_SITES.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            guard
                .get_or_insert_with(HashMap::new)
                .entry((from as u8, to as u8))
                .or_insert((held.site, site));
        }
        // A cycle exists iff the *new* edge closed one: can we get back
        // from `to` to `from`?
        let mut visited = 0u64;
        if reaches(to, from, &mut visited) {
            report(format!(
                "lock-order cycle: this thread acquired {class:?} (at {site}) while holding \
                 {held_class:?} (acquired at {held_site}), but the order graph already has a \
                 path {class:?} → … → {held_class:?} (first recorded: {reverse})",
                held_class = held.class,
                held_site = held.site,
                reverse = edge_sites(class, held.class),
            ));
        }
    }

    pub fn on_acquire(class: LockClass, kind: AcqKind, site: &'static Location<'static>) -> Token {
        ACQUISITIONS.fetch_add(1, Ordering::Relaxed);
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if !held.is_empty() {
                CYCLE_CHECKS.fetch_add(1, Ordering::Relaxed);
            }
            for entry in held.iter() {
                if entry.class == class {
                    if kind == AcqKind::Shared && entry.kind == AcqKind::Shared {
                        continue;
                    }
                    report(format!(
                        "same-class nesting: {class:?} acquired at {site} while already held \
                         (acquired at {})",
                        entry.site
                    ));
                    continue;
                }
                if class.layer() < entry.class.layer() {
                    report(format!(
                        "layer inversion: {class:?} (layer {}) acquired at {site} while holding \
                         {:?} (layer {}, acquired at {}) — outer layers must be taken first",
                        class.layer(),
                        entry.class,
                        entry.class.layer(),
                        entry.site
                    ));
                    // The inversion is the violation; keep the bad edge out
                    // of the graph so the correct-order sites don't later
                    // report a cascaded cycle.
                    continue;
                }
                record_edge(entry, class, site);
            }
            let slot = NEXT_SLOT.fetch_add(1, Ordering::Relaxed);
            held.push(Held { class, kind, site, slot });
            MAX_DEPTH.fetch_max(held.len() as u64, Ordering::Relaxed);
            Token(slot)
        })
    }

    pub fn on_release(token: Token) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held.iter().rposition(|e| e.slot == token.0) {
                held.remove(pos);
            }
        });
    }

    pub fn assert_lockless(what: &str) {
        HELD.with(|h| {
            let held = h.borrow();
            if let Some(top) = held.last() {
                report(format!(
                    "{what} entered while holding {:?} (acquired at {}; {} lock(s) held) — \
                     virtual-time advances must be lock-free",
                    top.class,
                    top.site,
                    held.len()
                ));
            }
        });
    }

    pub fn capture_violations<R>(f: impl FnOnce() -> R) -> (R, Vec<String>) {
        CAPTURE.with(|c| *c.borrow_mut() = Some(Vec::new()));
        let out = f();
        let grabbed = CAPTURE.with(|c| c.borrow_mut().take().unwrap_or_default());
        (out, grabbed)
    }

    pub fn stats() -> SyncStats {
        SyncStats {
            acquisitions: ACQUISITIONS.load(Ordering::Relaxed),
            max_hold_depth: MAX_DEPTH.load(Ordering::Relaxed),
            order_edges: ORDER_EDGES.load(Ordering::Relaxed),
            cycle_checks: CYCLE_CHECKS.load(Ordering::Relaxed),
            violations: VIOLATIONS.load(Ordering::Relaxed),
        }
    }

    pub fn violation_count() -> u64 {
        VIOLATIONS.load(Ordering::Relaxed)
    }

    pub fn held_depth() -> usize {
        HELD.with(|h| h.borrow().len())
    }

    pub const ENABLED: bool = true;
}

#[cfg(not(any(debug_assertions, feature = "sync-audit")))]
mod imp {
    use super::{AcqKind, SyncStats, Token};
    use crate::LockClass;
    use std::panic::Location;

    #[inline(always)]
    pub fn on_acquire(
        _class: LockClass,
        _kind: AcqKind,
        _site: &'static Location<'static>,
    ) -> Token {
        Token(0)
    }

    #[inline(always)]
    pub fn on_release(_token: Token) {}

    #[inline(always)]
    pub fn assert_lockless(_what: &str) {}

    pub fn capture_violations<R>(f: impl FnOnce() -> R) -> (R, Vec<String>) {
        (f(), Vec::new())
    }

    pub fn stats() -> SyncStats {
        SyncStats::default()
    }

    pub fn violation_count() -> u64 {
        0
    }

    pub fn held_depth() -> usize {
        0
    }

    pub const ENABLED: bool = false;
}

pub use imp::{
    assert_lockless, capture_violations, held_depth, on_acquire, on_release, stats,
    violation_count, ENABLED,
};

// In a plain release build the detector is the no-op module and there is
// nothing to test; `--features sync-audit` turns these back on.
#[cfg(all(test, any(debug_assertions, feature = "sync-audit")))]
mod tests {
    use super::*;
    use crate::{LockClass, TrackedCondvar, TrackedMutex, TrackedRwLock};
    use std::time::Duration;

    #[test]
    fn plain_acquisitions_are_counted_and_clean() {
        let m = TrackedMutex::new(LockClass::TestInner, 1u32);
        let before = stats().acquisitions;
        *m.lock() += 1;
        assert_eq!(*m.lock_or_recover(), 2);
        assert!(stats().acquisitions >= before + 2);
    }

    #[test]
    fn ordered_nesting_records_an_edge() {
        let outer = TrackedMutex::new(LockClass::TestOuter, ());
        let inner = TrackedMutex::new(LockClass::TestInner, ());
        let before = stats().order_edges;
        let g = outer.lock();
        let _h = inner.lock();
        drop(g);
        assert!(stats().order_edges > before);
        assert_eq!(held_depth(), 1);
    }

    #[test]
    fn layer_inversion_is_reported() {
        let outer = TrackedMutex::new(LockClass::TestOuter, ());
        let inner = TrackedMutex::new(LockClass::TestInner, ());
        let (_, violations) = capture_violations(|| {
            let _g = inner.lock();
            let _h = outer.lock();
        });
        assert!(
            violations.iter().any(|v| v.contains("layer inversion")),
            "expected a layer-inversion report, got {violations:?}"
        );
    }

    #[test]
    fn same_class_nesting_is_reported_for_exclusive() {
        let a = TrackedMutex::new(LockClass::TestA, ());
        let b = TrackedMutex::new(LockClass::TestA, ());
        let (_, violations) = capture_violations(|| {
            let _g = a.lock();
            let _h = b.lock();
        });
        assert!(violations.iter().any(|v| v.contains("same-class nesting")));
    }

    #[test]
    fn shared_reads_of_one_class_may_nest() {
        let a = TrackedRwLock::new(LockClass::TestA, ());
        let b = TrackedRwLock::new(LockClass::TestA, ());
        let (_, violations) = capture_violations(|| {
            let _g = a.read();
            let _h = b.read();
        });
        assert!(violations.is_empty(), "read-read nesting flagged: {violations:?}");
    }

    #[test]
    fn condvar_wait_releases_the_held_token() {
        let m = TrackedMutex::new(LockClass::TestA, ());
        let c = TrackedCondvar::new();
        let mut g = m.lock();
        assert_eq!(held_depth(), 1);
        // The wait times out, but during it the token must be gone; after
        // re-acquisition it is back.
        c.wait_for(&mut g, Duration::from_millis(1));
        assert_eq!(held_depth(), 1);
        drop(g);
        assert_eq!(held_depth(), 0);
    }

    #[test]
    fn clock_style_assert_fires_only_under_locks() {
        let (_, violations) = capture_violations(|| {
            assert_lockless("test advance");
        });
        assert!(violations.is_empty());
        let m = TrackedMutex::new(LockClass::TestA, ());
        let (_, violations) = capture_violations(|| {
            let _g = m.lock();
            assert_lockless("test advance");
        });
        assert!(violations.iter().any(|v| v.contains("lock-free")));
    }
}

//! ABL-CACHE bench: regenerates the registration-cache ablation series
//! and measures the simulator's wall cost per remote read with the cache
//! disabled (seed charging) vs enabled and warm, across transfer sizes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use vphi::backend::RegCacheConfig;
use vphi::builder::{VmConfig, VphiHost};
use vphi_bench::abl_cache::abl_cache;
use vphi_bench::support::{render_table, spawn_device_window, wait_for_guest_window};
use vphi_scif::{Port, RmaFlags, ScifAddr};
use vphi_sim_core::units::{format_bytes, format_throughput, MIB};
use vphi_sim_core::Timeline;

fn print_figure() {
    let report = abl_cache();
    let table: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                format_bytes(r.bytes),
                format_throughput(r.native_bw),
                format_throughput(r.cold_bw),
                format_throughput(r.warm_bw),
                format!("{:.1}%", 100.0 * r.warm_ratio()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "ABL-CACHE — registration cache off/warm (virtual time)",
            &["size", "native", "cache off", "cache warm", "warm/native"],
            &table,
        )
    );
}

fn bench(c: &mut Criterion) {
    print_figure();

    let host = VphiHost::new(1);
    let sizes = [MIB, 16 * MIB, 64 * MIB];
    let max = *sizes.last().unwrap();

    let configs: [(&str, RegCacheConfig); 2] =
        [("cache_off", RegCacheConfig::disabled()), ("cache_on", RegCacheConfig::default())];

    for (i, (label, reg_cache)) in configs.into_iter().enumerate() {
        let port = Port(910 + i as u16);
        let server = spawn_device_window(&host, port, max);
        let vm = host
            .spawn_vm(VmConfig::builder().mem_size(max + 64 * MIB).reg_cache(reg_cache).build());
        let mut tl = Timeline::new();
        let guest = vm.open_scif(&mut tl).unwrap();
        guest.connect(ScifAddr::new(host.device_node(0), port), &mut tl).unwrap();
        wait_for_guest_window(&guest, &vm);

        let mut group = c.benchmark_group(format!("abl_reg_cache/{label}"));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(200));
        group.measurement_time(std::time::Duration::from_millis(600));
        for size in sizes {
            let gbuf = vm.alloc_buf(size).unwrap();
            // First touch warms the cache, so the measured iterations are
            // all hits in the cache_on configuration.
            let mut warm_tl = Timeline::new();
            guest.vreadfrom(&gbuf, 0, RmaFlags::SYNC, &mut warm_tl).unwrap();
            group.throughput(Throughput::Bytes(size));
            group.bench_function(format_bytes(size), |b| {
                b.iter(|| {
                    let mut tl = Timeline::new();
                    guest.vreadfrom(&gbuf, 0, RmaFlags::SYNC, &mut tl).unwrap();
                    tl.total()
                })
            });
            drop(gbuf);
        }
        group.finish();

        let mut tlc = Timeline::new();
        let _ = guest.close(&mut tlc);
        vm.shutdown();
        let _ = server.join();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);

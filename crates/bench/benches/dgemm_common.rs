//! Shared driver for the Figs. 6–8 benches.

use std::sync::Arc;

use criterion::Criterion;
use vphi::builder::{VmConfig, VphiHost};
use vphi_bench::dgemm::{dgemm_figure, dgemm_sizes};
use vphi_bench::support::render_table;
use vphi_coi::transport::CoiEnv;
use vphi_coi::{CoiDaemon, GuestEnv, NativeEnv};
use vphi_mic_tools::{micnativeloadex, MicBinary};
use vphi_sim_core::units::format_bytes;

pub fn run_figure(c: &mut Criterion, name: &str, threads: u32) {
    // Regenerate the figure's virtual-time series.
    let rows = dgemm_figure(threads, &dgemm_sizes());
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                format_bytes(r.input_bytes),
                r.host_total.to_string(),
                r.vphi_total.to_string(),
                format!("{:.3}", r.normalized()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!(
                "Figs. 6-8 — dgemm via micnativeloadex, {threads} threads (host normalized to 1.0)"
            ),
            &["N", "inputs", "host total", "vPHI total", "vPHI/host"],
            &table,
        )
    );

    // Wall-clock cost of one full launch through each environment.
    let host = VphiHost::new(1);
    let daemon = CoiDaemon::spawn(&host, 0).unwrap();
    let native: Arc<dyn CoiEnv> = Arc::new(NativeEnv::new(&host));
    let vm = host.spawn_vm(VmConfig::default());
    let guest: Arc<dyn CoiEnv> = Arc::new(GuestEnv::new(&vm));
    let binary = MicBinary::dgemm_sample(1024);

    let mut group = c.benchmark_group(name);
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    group.bench_function("native_loadex", |b| {
        b.iter(|| micnativeloadex(&native, 0, &binary, threads).unwrap().total_time)
    });
    group.bench_function("vphi_loadex", |b| {
        b.iter(|| micnativeloadex(&guest, 0, &binary, threads).unwrap().total_time)
    });
    group.finish();

    vm.shutdown();
    daemon.shutdown();
}

//! Figure 7 bench: dgemm launch+execution with **112 threads**, host vs VM.

use criterion::{criterion_group, criterion_main, Criterion};

mod dgemm_common;

fn bench(c: &mut Criterion) {
    dgemm_common::run_figure(c, "fig7", 112);
}

criterion_group!(benches, bench);
criterion_main!(benches);

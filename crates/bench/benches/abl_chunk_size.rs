//! ABL-CHUNK bench: staging chunk size vs large-transfer bandwidth.

use criterion::{criterion_group, criterion_main, Criterion};
use vphi::builder::{VmConfig, VphiHost};
use vphi_bench::ablations::abl_chunk;
use vphi_bench::support::{render_table, spawn_device_sink};
use vphi_scif::{Port, ScifAddr};
use vphi_sim_core::units::{format_bytes, format_throughput, KIB, MIB};
use vphi_sim_core::Timeline;

fn print_figure() {
    let rows = abl_chunk();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![format_bytes(r.chunk), format_bytes(r.transfer), format_throughput(r.bandwidth)]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "ABL-CHUNK — kmalloc staging chunk vs send bandwidth",
            &["chunk", "transfer", "bandwidth"],
            &table,
        )
    );
}

fn bench(c: &mut Criterion) {
    print_figure();

    let host = VphiHost::new(1);
    let mut group = c.benchmark_group("abl_chunk");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for (i, chunk) in [256 * KIB, 4 * MIB].into_iter().enumerate() {
        let sink = spawn_device_sink(&host, Port(920 + i as u16));
        let vm = host.spawn_vm(VmConfig::builder().chunk_size(chunk).build());
        let mut tl = Timeline::new();
        let guest = vm.open_scif(&mut tl).unwrap();
        guest.connect(ScifAddr::new(host.device_node(0), Port(920 + i as u16)), &mut tl).unwrap();
        group.bench_function(format!("send_timed_64MiB_chunk_{}", format_bytes(chunk)), |b| {
            b.iter(|| {
                let mut tl = Timeline::new();
                guest.send_timed(64 * MIB, &mut tl).unwrap();
                tl.total()
            })
        });
        let mut tlc = Timeline::new();
        let _ = guest.close(&mut tlc);
        vm.shutdown();
        let _ = sink.join();
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! ABL-WAIT bench: interrupt vs polling vs hybrid waiting schemes.

use criterion::{criterion_group, criterion_main, Criterion};
use vphi::builder::{VmConfig, VphiHost};
use vphi::frontend::WaitScheme;
use vphi_bench::ablations::abl_wait;
use vphi_bench::support::{render_table, spawn_device_sink};
use vphi_scif::{Port, ScifAddr};
use vphi_sim_core::units::format_bytes;
use vphi_sim_core::Timeline;

fn print_figure() {
    let rows = abl_wait();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.to_string(),
                format_bytes(r.bytes),
                r.latency.to_string(),
                if r.slept { "sleep".into() } else { "spin".into() },
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "ABL-WAIT — waiting scheme vs send latency",
            &["scheme", "size", "latency", "vCPU"],
            &table,
        )
    );
}

fn bench(c: &mut Criterion) {
    print_figure();

    let host = VphiHost::new(1);
    let mut group = c.benchmark_group("abl_wait");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for (i, scheme) in [
        WaitScheme::Interrupt,
        WaitScheme::Polling,
        WaitScheme::STATIC_HYBRID,
        WaitScheme::ADAPTIVE,
    ]
    .into_iter()
    .enumerate()
    {
        let sink = spawn_device_sink(&host, Port(910 + i as u16));
        let vm = host.spawn_vm(VmConfig::builder().scheme(scheme).build());
        let mut tl = Timeline::new();
        let guest = vm.open_scif(&mut tl).unwrap();
        guest.connect(ScifAddr::new(host.device_node(0), Port(910 + i as u16)), &mut tl).unwrap();
        group.bench_function(scheme.label(), |b| {
            b.iter(|| {
                let mut tl = Timeline::new();
                guest.send(&[1u8], &mut tl).unwrap();
                tl.total()
            })
        });
        let mut tlc = Timeline::new();
        let _ = guest.close(&mut tlc);
        vm.shutdown();
        let _ = sink.join();
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Figure 4 bench: regenerates the send-receive latency series (virtual
//! time) and measures the simulator's wall cost per vPHI 1-byte send.

use criterion::{criterion_group, criterion_main, Criterion};
use vphi::builder::{VmConfig, VphiHost};
use vphi_bench::fig4::fig4_latency;
use vphi_bench::support::{render_table, spawn_device_sink};
use vphi_scif::{Port, ScifAddr};
use vphi_sim_core::units::format_bytes;
use vphi_sim_core::Timeline;

fn print_figure() {
    let rows = fig4_latency();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format_bytes(r.bytes),
                r.host.to_string(),
                r.vphi.to_string(),
                r.overhead().to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Fig. 4 — send-receive latency (virtual time)",
            &["size", "host", "vPHI", "overhead"],
            &table,
        )
    );
}

fn bench(c: &mut Criterion) {
    print_figure();

    // Wall-clock cost of one paravirtual 1-byte send through the full
    // stack (threads, ring, backend, SCIF).
    let host = VphiHost::new(1);
    let sink = spawn_device_sink(&host, Port(900));
    let vm = host.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let guest = vm.open_scif(&mut tl).unwrap();
    guest.connect(ScifAddr::new(host.device_node(0), Port(900)), &mut tl).unwrap();

    let mut group = c.benchmark_group("fig4");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    group.bench_function("vphi_send_1B", |b| {
        b.iter(|| {
            let mut tl = Timeline::new();
            guest.send(std::hint::black_box(&[1u8]), &mut tl).unwrap();
            tl.total()
        })
    });

    // Native comparison point.
    let sink2 = spawn_device_sink(&host, Port(901));
    let native = host.native_endpoint().unwrap();
    native.connect(ScifAddr::new(host.device_node(0), Port(901)), &mut tl).unwrap();
    group.bench_function("native_send_1B", |b| {
        b.iter(|| {
            let mut tl = Timeline::new();
            native.send(std::hint::black_box(&[1u8]), &mut tl).unwrap();
            tl.total()
        })
    });
    group.finish();

    native.close();
    let mut tlc = Timeline::new();
    let _ = guest.close(&mut tlc);
    vm.shutdown();
    let _ = sink.join();
    let _ = sink2.join();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Figure 5 bench: regenerates the remote-read throughput series and
//! measures the simulator's wall cost per 4 MiB remote read.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use vphi::builder::{VmConfig, VphiHost};
use vphi_bench::fig5::fig5_throughput;
use vphi_bench::support::{
    render_table, spawn_device_window, wait_for_guest_window, wait_for_native_window,
};
use vphi_scif::{Port, RmaFlags, ScifAddr};
use vphi_sim_core::units::{format_bytes, format_throughput, MIB};
use vphi_sim_core::Timeline;

fn print_figure() {
    let rows = fig5_throughput();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format_bytes(r.bytes),
                format_throughput(r.host_bw),
                format_throughput(r.vphi_bw),
                format!("{:.1}%", 100.0 * r.ratio()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Fig. 5 — remote memory read throughput (virtual time)",
            &["size", "host", "vPHI", "vPHI/host"],
            &table,
        )
    );
}

fn bench(c: &mut Criterion) {
    print_figure();

    let host = VphiHost::new(1);
    let size = 4 * MIB;

    let server = spawn_device_window(&host, Port(902), size);
    let native = host.native_endpoint().unwrap();
    let mut tl = Timeline::new();
    native.connect(ScifAddr::new(host.device_node(0), Port(902)), &mut tl).unwrap();
    wait_for_native_window(&native);

    let server2 = spawn_device_window(&host, Port(903), size);
    let vm = host.spawn_vm(VmConfig::default());
    let guest = vm.open_scif(&mut tl).unwrap();
    guest.connect(ScifAddr::new(host.device_node(0), Port(903)), &mut tl).unwrap();
    wait_for_guest_window(&guest, &vm);

    let mut group = c.benchmark_group("fig5");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    group.throughput(Throughput::Bytes(size));
    let mut buf = vec![0u8; size as usize];
    group.bench_function("native_vread_4MiB", |b| {
        b.iter(|| {
            let mut tl = Timeline::new();
            native.vreadfrom(&mut buf, 0, RmaFlags::SYNC, &mut tl).unwrap();
            tl.total()
        })
    });
    let gbuf = vm.alloc_buf(size).unwrap();
    group.bench_function("vphi_vread_4MiB", |b| {
        b.iter(|| {
            let mut tl = Timeline::new();
            guest.vreadfrom(&gbuf, 0, RmaFlags::SYNC, &mut tl).unwrap();
            tl.total()
        })
    });
    group.finish();

    drop(gbuf);
    native.close();
    let mut tlc = Timeline::new();
    let _ = guest.close(&mut tlc);
    vm.shutdown();
    let _ = server.join();
    let _ = server2.join();
}

criterion_group!(benches, bench);
criterion_main!(benches);

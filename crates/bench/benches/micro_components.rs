//! Implementation microbenchmarks: wall-clock cost of the hot primitives
//! every request crosses (virtqueue, wait queue, SCIF loopback, window
//! lookup).  These guard the simulator's own performance.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use vphi_sim_core::{CostModel, SimDuration, Timeline, VirtualClock};
use vphi_virtio::{Descriptor, UsedElem, VirtQueue};
use vphi_vmm::WaitQueue;

fn bench_virtqueue(c: &mut Criterion) {
    let q = VirtQueue::new(256);
    let push = SimDuration::from_nanos(650);
    c.bench_function("virtqueue_roundtrip", |b| {
        b.iter(|| {
            let mut tl = Timeline::new();
            let head = q
                .add_chain(
                    &[Descriptor::readable(0x1000, 64), Descriptor::writable(0x2000, 32)],
                    push,
                    &mut tl,
                )
                .unwrap();
            let chain = q.pop_avail().unwrap().unwrap();
            q.push_used(UsedElem { id: chain.head, len: 32 }, push, &mut tl);
            q.take_used().unwrap();
            head
        })
    });
}

fn bench_waitqueue(c: &mut Criterion) {
    let wq = WaitQueue::new();
    c.bench_function("waitqueue_satisfied_predicate", |b| b.iter(|| wq.wait_until(|| Some(1u32))));
}

fn bench_scif_loopback(c: &mut Criterion) {
    let cost = Arc::new(CostModel::paper_calibrated());
    let clock = Arc::new(VirtualClock::new());
    let fabric = vphi_scif::ScifFabric::new(cost, clock);
    let server = fabric.open(vphi_scif::HOST_NODE).unwrap();
    let mut tl = Timeline::new();
    server.bind(vphi_scif::Port(77)).unwrap();
    server.listen(2).unwrap();
    let client = fabric.open(vphi_scif::HOST_NODE).unwrap();
    let s2 = Arc::clone(&server);
    let acc = std::thread::spawn(move || {
        let mut tl = Timeline::new();
        s2.accept(&mut tl).unwrap()
    });
    client
        .connect(vphi_scif::ScifAddr::new(vphi_scif::HOST_NODE, vphi_scif::Port(77)), &mut tl)
        .unwrap();
    let conn = acc.join().unwrap();

    c.bench_function("scif_loopback_send_recv_64B", |b| {
        let data = [7u8; 64];
        let mut buf = [0u8; 64];
        b.iter(|| {
            let mut tl = Timeline::new();
            client.send(&data, &mut tl).unwrap();
            conn.recv(&mut buf, &mut tl).unwrap();
            buf[0]
        })
    });
}

fn bench_cost_model(c: &mut Criterion) {
    let m = CostModel::paper_calibrated();
    c.bench_function("cost_model_link_transfer", |b| {
        b.iter(|| m.link_transfer(std::hint::black_box(1 << 20)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(20);
    targets = bench_virtqueue, bench_waitqueue, bench_scif_loopback, bench_cost_model
}
criterion_main!(benches);

//! ABL-FAULTS bench: wall cost of the fault-injection hooks (disarmed —
//! the production state — and armed on an idle plan) and of a full card
//! reset, plus the ablation report itself.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use vphi::builder::VphiHost;
use vphi_bench::faults::abl_faults;
use vphi_faults::{FaultHook, FaultInjector, FaultPlan, FaultSite};

fn print_figure() {
    let report = abl_faults();
    println!(
        "ABL-FAULTS — disarmed fire {:.1} ns, armed-idle fire {:.1} ns, \
         {} crossings/send, hook share {:.4}% of {:.0} ns send wall",
        report.disarmed_ns_per_fire,
        report.armed_idle_ns_per_fire,
        report.crossings_per_send,
        report.hook_overhead_pct,
        report.send_wall_ns,
    );
    println!(
        "recovery: card reset {} with 2 VMs (quarantined victim {} / bystander {})\n",
        report.reset_recovery, report.victim_quarantined, report.bystander_quarantined,
    );
}

fn bench(c: &mut Criterion) {
    print_figure();

    let mut group = c.benchmark_group("abl_faults");

    let disarmed = FaultHook::new();
    group.bench_function("fire_disarmed", |b| {
        b.iter(|| {
            std::hint::black_box(disarmed.fire(std::hint::black_box(FaultSite::PcieDmaError)))
        })
    });

    let armed = FaultHook::new();
    armed.arm(Arc::new(FaultInjector::new(FaultPlan::from_seed(0, 0))));
    group.bench_function("fire_armed_idle", |b| {
        b.iter(|| std::hint::black_box(armed.fire(std::hint::black_box(FaultSite::PcieDmaError))))
    });

    // A full fail + reset cycle on a 2-card host (no VMs attached — this
    // is the simulator's wall cost of the recovery path itself).
    let host = VphiHost::new(2);
    group.bench_function("fail_and_reset_card", |b| {
        b.iter(|| {
            host.board(0).fail("bench: injected lockup");
            std::hint::black_box(host.reset_card(0))
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

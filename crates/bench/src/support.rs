//! Shared servers and table rendering for the experiments.

use std::sync::Arc;

use vphi::builder::VphiHost;
use vphi_scif::window::WindowBacking;
use vphi_scif::{Port, Prot, RmaFlags, ScifEndpoint};
use vphi_sim_core::Timeline;

/// A device-side server that accepts one connection and drains bytes
/// until the peer closes (the paper's send-receive benchmark server).
pub fn spawn_device_sink(host: &VphiHost, port: Port) -> std::thread::JoinHandle<u64> {
    spawn_device_sink_on(host, 0, port)
}

/// [`spawn_device_sink`] on an arbitrary card (the faults ablation runs
/// victim and bystander VMs against different boards).
pub fn spawn_device_sink_on(
    host: &VphiHost,
    card: usize,
    port: Port,
) -> std::thread::JoinHandle<u64> {
    let server = host.device_endpoint(card).expect("device endpoint");
    let (ready_tx, ready_rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let mut tl = Timeline::new();
        server.bind(port, &mut tl).expect("bind");
        server.listen(4, &mut tl).expect("listen");
        ready_tx.send(()).expect("readiness");
        let conn = server.accept(&mut tl).expect("accept");
        let mut drained = 0u64;
        let mut buf = vec![0u8; 1 << 20];
        loop {
            match conn.core().try_recv(&mut buf, &mut tl) {
                Ok(0) => {
                    // Block for at least one byte (or EOF).
                    match conn.core().recv(&mut buf[..1], &mut tl) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => drained += n as u64,
                    }
                }
                Ok(n) => drained += n as u64,
                Err(_) => break,
            }
        }
        drained
    });
    ready_rx.recv().expect("server thread died before listening");
    handle
}

/// A device-side server that registers a `window_len` GDDR window at
/// offset 0 (the paper's remote-memory benchmark server) and parks until
/// the peer closes.
pub fn spawn_device_window(
    host: &VphiHost,
    port: Port,
    window_len: u64,
) -> std::thread::JoinHandle<()> {
    let board = Arc::clone(host.board(0));
    let server = host.device_endpoint(0).expect("device endpoint");
    let (ready_tx, ready_rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let mut tl = Timeline::new();
        server.bind(port, &mut tl).expect("bind");
        server.listen(4, &mut tl).expect("listen");
        ready_tx.send(()).expect("readiness");
        let conn = server.accept(&mut tl).expect("accept");
        let region = board.memory().alloc_timed(window_len).expect("gddr alloc");
        let offset = region.offset();
        conn.register(
            Some(0),
            window_len,
            Prot::READ_WRITE,
            WindowBacking::Device(region),
            &mut tl,
        )
        .expect("register");
        // Park until the peer hangs up.
        let mut b = [0u8; 1];
        let _ = conn.core().recv(&mut b, &mut tl);
        let _ = board.memory().free(offset);
    });
    ready_rx.recv().expect("server thread died before listening");
    handle
}

/// Retry a tiny remote read until the device window appears (wall-clock
/// rendezvous with the server thread).
pub fn wait_for_native_window(ep: &ScifEndpoint) {
    let mut b = [0u8; 1];
    for _ in 0..2000 {
        let mut tl = Timeline::new();
        if ep.vreadfrom(&mut b, 0, RmaFlags::SYNC, &mut tl).is_ok() {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    panic!("device window never appeared (native)");
}

/// Guest-side variant of [`wait_for_native_window`].
pub fn wait_for_guest_window(guest: &vphi::GuestScif, vm: &vphi::VphiVm) {
    let buf = vm.alloc_buf(1).expect("guest buf");
    for _ in 0..2000 {
        let mut tl = Timeline::new();
        if guest.vreadfrom(&buf, 0, RmaFlags::SYNC, &mut tl).is_ok() {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    panic!("device window never appeared (guest)");
}

/// Render a simple fixed-width table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = format!("## {title}\n");
    let hdr: Vec<String> =
        headers.iter().enumerate().map(|(i, h)| format!("{h:>w$}", w = widths[i])).collect();
    out.push_str(&hdr.join("  "));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        let line: Vec<String> =
            row.iter().enumerate().map(|(i, c)| format!("{c:>w$}", w = widths[i])).collect();
        out.push_str(&line.join("  "));
        out.push('\n');
    }
    out
}

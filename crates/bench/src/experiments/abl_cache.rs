//! **ABL-CACHE** — the backend RMA registration cache vs the Fig. 5 gap.
//!
//! Fig. 5's 72% ceiling is the per-page pin + GPA→HVA translation the
//! seed backend pays on every remote read.  The registration cache pays
//! it once per `(endpoint, buffer)`: this ablation sweeps transfer size
//! and measures remote-read throughput three ways —
//!
//! * native (host process, no virtualization),
//! * vPHI with the cache **disabled** (every request pays translation —
//!   the paper's published curve),
//! * vPHI with the cache **enabled and warm** (the buffer was touched
//!   once; the measured request hits).
//!
//! The warm curve closes the gap: at 256 MiB it lands within 10% of
//! native, while the disabled curve reproduces the 72% ratio.

use vphi::backend::RegCacheConfig;
use vphi::builder::{VmConfig, VphiHost};
use vphi::debugfs::VphiDebugReport;
use vphi_scif::{Port, RmaFlags, ScifAddr};
use vphi_sim_core::units::{KIB, MIB};
use vphi_sim_core::Timeline;

use crate::support::{spawn_device_window, wait_for_guest_window, wait_for_native_window};

/// One x-axis point (bandwidths in bytes/s of virtual time).
#[derive(Debug, Clone, PartialEq)]
pub struct AblCacheRow {
    pub bytes: u64,
    pub native_bw: f64,
    /// Cache disabled: the seed / Fig. 5 charging.
    pub cold_bw: f64,
    /// Cache enabled, second read of the same buffer.
    pub warm_bw: f64,
}

impl AblCacheRow {
    pub fn cold_ratio(&self) -> f64 {
        self.cold_bw / self.native_bw
    }

    pub fn warm_ratio(&self) -> f64 {
        self.warm_bw / self.native_bw
    }
}

/// The sweep result plus the warm VM's cache counters.
#[derive(Debug, Clone, PartialEq)]
pub struct AblCacheReport {
    pub rows: Vec<AblCacheRow>,
    pub warm_hits: u64,
    pub warm_misses: u64,
    /// Hit rate observed on the warm VM over the whole sweep.
    pub hit_rate: f64,
    /// The disabled VM must never probe the cache.
    pub cold_probes: u64,
}

/// Transfer sizes swept (the Fig. 5 axis).
pub fn abl_cache_sizes() -> Vec<u64> {
    vec![64 * KIB, 256 * KIB, MIB, 4 * MIB, 16 * MIB, 64 * MIB, 128 * MIB, 256 * MIB]
}

/// Run the ablation.
pub fn abl_cache() -> AblCacheReport {
    let host = VphiHost::new(1);
    let max = *abl_cache_sizes().last().expect("nonempty sizes");

    // Native client against a device window.
    let server = spawn_device_window(&host, Port(870), max);
    let native = host.native_endpoint().expect("native endpoint");
    let mut tl = Timeline::new();
    native.connect(ScifAddr::new(host.device_node(0), Port(870)), &mut tl).expect("connect");
    wait_for_native_window(&native);

    // vPHI client with the registration cache disabled (seed charging).
    let server_cold = spawn_device_window(&host, Port(871), max);
    let vm_cold = host.spawn_vm(
        VmConfig::builder().mem_size(max + 64 * MIB).reg_cache(RegCacheConfig::disabled()).build(),
    );
    let guest_cold = vm_cold.open_scif(&mut tl).expect("cold open");
    guest_cold
        .connect(ScifAddr::new(host.device_node(0), Port(871)), &mut tl)
        .expect("cold connect");
    wait_for_guest_window(&guest_cold, &vm_cold);

    // vPHI client with the cache enabled; each measurement re-reads a
    // buffer the cache has already seen.
    let server_warm = spawn_device_window(&host, Port(872), max);
    let vm_warm = host.spawn_vm(VmConfig::builder().mem_size(max + 64 * MIB).build());
    let guest_warm = vm_warm.open_scif(&mut tl).expect("warm open");
    guest_warm
        .connect(ScifAddr::new(host.device_node(0), Port(872)), &mut tl)
        .expect("warm connect");
    wait_for_guest_window(&guest_warm, &vm_warm);

    let mut rows = Vec::new();
    let mut native_buf = vec![0u8; max as usize];
    for bytes in abl_cache_sizes() {
        let mut native_tl = Timeline::new();
        native
            .vreadfrom(&mut native_buf[..bytes as usize], 0, RmaFlags::SYNC, &mut native_tl)
            .expect("native vread");

        let gbuf_cold = vm_cold.alloc_buf(bytes).expect("cold buf");
        let mut cold_tl = Timeline::new();
        guest_cold.vreadfrom(&gbuf_cold, 0, RmaFlags::SYNC, &mut cold_tl).expect("cold vread");
        drop(gbuf_cold);

        let gbuf_warm = vm_warm.alloc_buf(bytes).expect("warm buf");
        let mut warm_up_tl = Timeline::new();
        guest_warm
            .vreadfrom(&gbuf_warm, 0, RmaFlags::SYNC, &mut warm_up_tl)
            .expect("warming vread");
        let mut warm_tl = Timeline::new();
        guest_warm.vreadfrom(&gbuf_warm, 0, RmaFlags::SYNC, &mut warm_tl).expect("warm vread");
        drop(gbuf_warm);

        rows.push(AblCacheRow {
            bytes,
            native_bw: native_tl.total().throughput(bytes),
            cold_bw: cold_tl.total().throughput(bytes),
            warm_bw: warm_tl.total().throughput(bytes),
        });
    }

    let warm_report = VphiDebugReport::collect(&vm_warm);
    let cold_report = VphiDebugReport::collect(&vm_cold);
    let probes = warm_report.reg_cache_hits + warm_report.reg_cache_misses;
    let report = AblCacheReport {
        rows,
        warm_hits: warm_report.reg_cache_hits,
        warm_misses: warm_report.reg_cache_misses,
        hit_rate: if probes == 0 { 0.0 } else { warm_report.reg_cache_hits as f64 / probes as f64 },
        cold_probes: cold_report.reg_cache_hits + cold_report.reg_cache_misses,
    };

    native.close();
    let mut tl_close = Timeline::new();
    let _ = guest_cold.close(&mut tl_close);
    let _ = guest_warm.close(&mut tl_close);
    vm_cold.shutdown();
    vm_warm.shutdown();
    let _ = server.join();
    let _ = server_cold.join();
    let _ = server_warm.join();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_cache_closes_the_fig5_gap() {
        let report = abl_cache();
        let peak = report.rows.last().unwrap();
        // Disabled cache reproduces the paper's 72% ceiling at 256 MiB.
        assert!((peak.cold_ratio() - 0.72).abs() < 0.01, "cold ratio = {}", peak.cold_ratio());
        // Warm cache reaches at least 90% of native at 256 MiB.
        assert!(peak.warm_ratio() >= 0.90, "warm ratio = {}", peak.warm_ratio());
        // The cache never makes things slower.
        for row in &report.rows {
            assert!(row.warm_bw >= row.cold_bw, "warm slower than cold at {}: {row:?}", row.bytes);
        }
        // Each size does one warming miss and one measured hit; the
        // window-wait probe contributes one extra miss up front.
        let sizes = abl_cache_sizes().len() as u64;
        assert_eq!(report.warm_misses, sizes + 1);
        assert_eq!(report.warm_hits, sizes);
        let expected_rate = sizes as f64 / (2 * sizes + 1) as f64;
        assert!((report.hit_rate - expected_rate).abs() < 1e-9);
        // The disabled VM never probes the cache.
        assert_eq!(report.cold_probes, 0);
    }
}

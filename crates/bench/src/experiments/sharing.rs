//! **SHARE** — the paper's headline capability, quantified.
//!
//! "To our knowledge, vPHI is the first approach that enables Xeon Phi
//! sharing between multiple VMs running on the same physical node."  The
//! paper asserts the capability; this experiment measures what sharing
//! costs along both contended axes:
//!
//! 1. **PCIe link**: N VMs each issue a bulk remote read at the same
//!    virtual instant.  The per-VM request overhead is measured on the
//!    real stack; the queueing is computed on the real link resource.
//! 2. **Cores (uOS)**: N co-scheduled 224-thread dgemm jobs — the
//!    deterministic oversubscription model.

use vphi::builder::{VmConfig, VphiHost};
use vphi_phi::ComputeJob;
use vphi_scif::{Port, RmaFlags, ScifAddr};
use vphi_sim_core::stats::jain_fairness;
use vphi_sim_core::units::MIB;
use vphi_sim_core::{SimDuration, SimTime, SpanLabel, Timeline};

use crate::support::{spawn_device_window, wait_for_guest_window};

/// One row of the sharing table.
#[derive(Debug, Clone, PartialEq)]
pub struct ShareRow {
    pub vms: usize,
    /// Bytes each VM reads.
    pub bytes_each: u64,
    /// Mean per-VM completion time (overhead + queue + transfer).
    pub mean_latency: SimDuration,
    /// Aggregate throughput across all VMs (bytes / makespan).
    pub aggregate_bw: f64,
    /// Jain fairness over per-VM bandwidths.
    pub fairness: f64,
    /// Slowdown of a co-scheduled 224-thread dgemm vs running alone.
    pub compute_slowdown: f64,
}

/// Regenerate the sharing-scaling table for the given VM counts.
pub fn sharing_scaling(vm_counts: &[usize]) -> Vec<ShareRow> {
    let bytes_each = 64 * MIB;
    let mut rows = Vec::new();
    for &n in vm_counts {
        rows.push(share_point(n, bytes_each));
    }
    rows
}

fn share_point(n: usize, bytes_each: u64) -> ShareRow {
    let host = VphiHost::new(1);

    // --- measure the real per-VM path once (overhead excluding link time) ---
    let server = spawn_device_window(&host, Port(860), bytes_each);
    let vm = host.spawn_vm(VmConfig::builder().mem_size(bytes_each + 64 * MIB).build());
    let mut tl = Timeline::new();
    let guest = vm.open_scif(&mut tl).expect("open");
    guest.connect(ScifAddr::new(host.device_node(0), Port(860)), &mut tl).expect("connect");
    wait_for_guest_window(&guest, &vm);
    let gbuf = vm.alloc_buf(bytes_each).expect("buf");
    let mut read_tl = Timeline::new();
    guest.vreadfrom(&gbuf, 0, RmaFlags::SYNC, &mut read_tl).expect("vread");
    let link_time = read_tl.total_for(SpanLabel::LinkTransfer);
    let overhead = read_tl.total().saturating_sub(link_time);
    drop(gbuf);
    let mut tl_close = Timeline::new();
    let _ = guest.close(&mut tl_close);
    vm.shutdown();
    let _ = server.join();

    // --- N simultaneous issues on the real link resource ---
    let link = host.board(0).link();
    link.reset_accounting();
    let t0 = SimTime::ZERO;
    let mut latencies = Vec::new();
    let mut makespan = SimDuration::ZERO;
    for _ in 0..n {
        let mut link_tl = Timeline::new();
        let end = link.transmit_from(t0, bytes_each, &mut link_tl);
        let queued = link_tl.total_for(SpanLabel::LinkContention);
        let latency = overhead + queued + link_time;
        makespan = makespan.max(end.elapsed_since(t0) + overhead);
        latencies.push(latency);
    }
    let per_vm_bw: Vec<f64> = latencies.iter().map(|l| l.throughput(bytes_each)).collect();
    let mean_ns = latencies.iter().map(|l| l.as_nanos()).sum::<u64>() / n as u64;

    // --- compute-side sharing: co-scheduled 224-thread dgemm jobs ---
    let flops = 2.0 * 4096f64.powi(3);
    let uos = host.board(0).uos();
    let mut solo_tl = Timeline::new();
    let solo = uos.run(&ComputeJob::new("solo", 224, flops, 0), &mut solo_tl).duration;
    let jobs: Vec<ComputeJob> =
        (0..n).map(|i| ComputeJob::new(format!("vm{i}"), 224, flops, 0)).collect();
    let mut tls: Vec<Timeline> = (0..n).map(|_| Timeline::new()).collect();
    let outs = uos.run_concurrent(&jobs, &mut tls);
    let worst = outs.iter().map(|o| o.duration).max().unwrap_or(solo);
    let compute_slowdown = worst.as_nanos() as f64 / solo.as_nanos().max(1) as f64;

    ShareRow {
        vms: n,
        bytes_each,
        mean_latency: SimDuration::from_nanos(mean_ns),
        aggregate_bw: if makespan.is_zero() {
            0.0
        } else {
            (bytes_each * n as u64) as f64 / makespan.as_secs_f64()
        },
        fairness: jain_fairness(&per_vm_bw),
        compute_slowdown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharing_scales_to_the_link_limit() {
        let rows = sharing_scaling(&[1, 2, 4]);
        // A single VM sees the Fig. 5 bandwidth (~4.6 GB/s per VM).
        let solo_bw = rows[0].bytes_each as f64 / rows[0].mean_latency.as_secs_f64();
        assert!((solo_bw / 1e9 - 4.6).abs() < 0.2, "solo vPHI bw = {solo_bw}");
        // Mean latency grows with VM count (the link serializes).
        assert!(rows[1].mean_latency > rows[0].mean_latency);
        assert!(rows[2].mean_latency > rows[1].mean_latency);
        // Aggregate throughput approaches (and never exceeds) the link.
        for r in &rows {
            assert!(r.aggregate_bw <= 6.45e9, "aggregate {} exceeds link", r.aggregate_bw);
        }
        assert!(rows[2].aggregate_bw > rows[0].aggregate_bw * 0.9);
        // Compute oversubscription: 4 VMs of 224 threads ≈ 4× slowdown.
        assert!((rows[2].compute_slowdown - 4.0).abs() < 0.3);
        assert!((rows[0].compute_slowdown - 1.0).abs() < 0.01);
    }

    #[test]
    fn sharing_is_fair() {
        let rows = sharing_scaling(&[4]);
        // FIFO service at the same issue instant is unfair in latency but
        // every VM gets its bytes; fairness over bandwidth stays moderate.
        assert!(rows[0].fairness > 0.5, "fairness = {}", rows[0].fairness);
    }
}

//! **OPEN-LOOP** — the serving workload for the completion-token API.
//!
//! Closed-loop benchmarks (Fig. 4/5) measure the path; a serving system
//! faces an *open* loop: requests arrive on their own schedule whether or
//! not the previous one finished, and the question is how much offered
//! load the transport sustains before tail latency collapses.  This
//! experiment pits the two submission models against each other:
//!
//! * **one-request-per-kick** — the legacy blocking API: every request
//!   pays its own doorbell vm-exit and (under the Interrupt scheme) its
//!   own completion wakeup.
//! * **batched SQ/CQ** — [`vphi::GuestScif::submit`] publishes a whole
//!   batch behind one doorbell per lane and reaps completions by token,
//!   so the per-notification costs are amortized across the batch.
//!
//! Hybrid method, same as MQ-SCALE: each request class is measured once
//! on the real stack and split into (shard service time, guest-side
//! fill); seeded open-loop arrivals are then replayed through the real
//! lane router with per-lane FIFO queueing, and percentiles are computed
//! directly from the per-request sojourn times.  Two real-stack runs
//! anchor the model: the kicks-per-submission ledger of an actual
//! submit/reap run (doorbell amortization is *measured*, not assumed),
//! and the 382 µs 1-byte blocking anchor (the redesign must not move it).
//!
//! The request mix is inference-serving shaped: large prefill pushes,
//! small decode steps, and KV-block fetches.

use vphi::builder::{VmConfig, VphiHost};
use vphi::frontend::VphiChannel;
use vphi::protocol::VphiRequest;
use vphi::{Sq, SqEntry};
use vphi_scif::{Port, ScifAddr};
use vphi_sim_core::units::KIB;
use vphi_sim_core::{SimDuration, SpanLabel, SplitMix64, Timeline};

use crate::support::spawn_device_sink;

/// Deterministic arrival seed (bit-reproducibility is asserted in tests).
const ARRIVAL_SEED: u64 = 0x0000_BE70_0B50_5E4E_u64;
/// VMs sharing the card in the sweep.
pub const OPEN_LOOP_VMS: usize = 4;
/// Entries per batch in the batched model (and the real ledger run).
pub const OPEN_LOOP_BATCH: usize = 16;
/// Offered per-VM request rates swept (requests per virtual second).
pub const OPEN_LOOP_RATES: &[f64] = &[500.0, 1_000.0, 2_000.0, 4_000.0, 8_000.0, 16_000.0];
/// Virtual seconds of arrivals generated per grid point.
const HORIZON_S: f64 = 0.25;
/// The p99 service-level objective that defines "saturation": the
/// highest offered rate whose p99 stays under this is the knee.
const SLO_P99: SimDuration = SimDuration::from_millis(2);
/// Endpoints per VM (sequential epds, hashed onto lanes by the router).
const ENDPOINTS_PER_VM: u64 = 16;

/// The serving mix: (name, payload bytes, share of requests).
const MIX: &[(&str, u64, f64)] =
    &[("prefill", 64 * KIB, 0.10), ("decode", KIB, 0.60), ("kv-fetch", 4 * KIB, 0.30)];

/// Guest-side labels that pipeline across requests (same split as
/// MQ-SCALE); the doorbell/wakeup labels are broken out separately
/// because batching amortizes exactly those.
const GUEST_FILL: &[SpanLabel] =
    &[SpanLabel::GuestSyscall, SpanLabel::GuestKmalloc, SpanLabel::GuestCopy, SpanLabel::RingPush];
const GUEST_NOTIFY: &[SpanLabel] = &[SpanLabel::VmExitKick, SpanLabel::GuestWakeup];

/// One (mode, rate) grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopRow {
    /// Entries per doorbell (1 = legacy one-request-per-kick).
    pub batch: usize,
    /// Offered rate per VM (req/s of virtual time).
    pub rate_per_vm: f64,
    pub vms: usize,
    pub requests: u64,
    /// Completed requests / horizon — the sustained throughput.
    pub throughput_rps: f64,
    pub p50: SimDuration,
    pub p99: SimDuration,
    pub p999: SimDuration,
}

/// Ledger of an actual submit/reap run on the real stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoorbellLedger {
    pub batches_submitted: u64,
    pub batch_entries: u64,
    /// Doorbells rung for those entries (one per touched lane per flush).
    pub batch_kicks: u64,
    pub tokens_reaped: u64,
    /// Backend-side drains that found work, and the chains they popped.
    pub burst_drains: u64,
    pub burst_chains: u64,
}

impl DoorbellLedger {
    /// Doorbells per submitted entry — amortization means ≪ 1.
    pub fn kicks_per_submission(&self) -> f64 {
        self.batch_kicks as f64 / self.batch_entries.max(1) as f64
    }

    /// Chains the backend popped per wakeup sweep — batching means > 1.
    pub fn chains_per_drain(&self) -> f64 {
        self.burst_chains as f64 / self.burst_drains.max(1) as f64
    }
}

/// The full OPEN-LOOP report.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopReport {
    pub rows: Vec<OpenLoopRow>,
    pub ledger: DoorbellLedger,
    /// 1-byte blocking-send latency after the API redesign — must equal
    /// the seed's 382 µs byte-for-byte.
    pub anchor: SimDuration,
}

impl OpenLoopReport {
    fn saturation(&self, batch: usize) -> f64 {
        self.rows
            .iter()
            .filter(|r| r.batch == batch && r.p99 <= SLO_P99)
            .map(|r| r.throughput_rps)
            .fold(0.0, f64::max)
    }

    /// Highest sustained throughput with p99 within the SLO, batched.
    pub fn batched_saturation_rps(&self) -> f64 {
        self.saturation(OPEN_LOOP_BATCH)
    }

    /// Same knee for the one-request-per-kick model.
    pub fn single_saturation_rps(&self) -> f64 {
        self.saturation(1)
    }

    /// The headline number (acceptance floor: 2×).
    pub fn batching_speedup(&self) -> f64 {
        self.batched_saturation_rps() / self.single_saturation_rps().max(1.0)
    }
}

/// Regenerate the OPEN-LOOP report.
pub fn open_loop() -> OpenLoopReport {
    // Real-stack measurement of each class: (svc, fill, notify) where
    // notify is the per-request doorbell + wakeup cost batching amortizes.
    let classes: Vec<(u64, f64, SimDuration, SimDuration, SimDuration)> = MIX
        .iter()
        .map(|&(_, bytes, share)| {
            let (svc, fill, notify) = measure_class(bytes, Port(884));
            (bytes, share, svc, fill, notify)
        })
        .collect();

    let router = VphiChannel::with_queues(8, VmConfig::default().num_queues);
    let mut rows = Vec::new();
    for &batch in &[1usize, OPEN_LOOP_BATCH] {
        for &rate in OPEN_LOOP_RATES {
            rows.push(replay_grid_point(&classes, &router, batch, rate));
        }
    }

    OpenLoopReport { rows, ledger: ledger_run(), anchor: one_byte_latency(Port(885)) }
}

/// Generate seeded open-loop arrivals for one (batch, rate) point and
/// replay them through a two-stage tandem queue: the submitting vCPU
/// (FIFO per VM, service = guest fill + its share of the notify cost)
/// feeding the lane shards (FIFO per VM × lane, service = shard time).
fn replay_grid_point(
    classes: &[(u64, f64, SimDuration, SimDuration, SimDuration)],
    router: &VphiChannel,
    batch: usize,
    rate_per_vm: f64,
) -> OpenLoopRow {
    let horizon_ns = (HORIZON_S * 1e9) as u64;
    let mut latencies: Vec<u64> = Vec::new();
    let lanes = router.queue_count();

    for vm in 0..OPEN_LOOP_VMS as u64 {
        let mut rng = SplitMix64::new(ARRIVAL_SEED ^ (vm.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        let mut t_ns = 0u64;
        let mut vcpu_free = 0u64;
        let mut lane_free = vec![0u64; lanes];
        // Requests the current batch has accumulated; flushed (and the
        // doorbell paid once) when full.
        let mut pending: Vec<(u64, usize, u64)> = Vec::new(); // (arrival, class, lane)
        loop {
            // Exponential inter-arrival, seeded: -ln(U)/λ.
            let u = rng.next_f64().max(1e-12);
            let gap = (-u.ln() / rate_per_vm * 1e9) as u64;
            t_ns += gap.max(1);
            if t_ns >= horizon_ns {
                break;
            }
            // Class by mix share, endpoint by hash, lane by the REAL router.
            let pick = rng.next_f64();
            let mut acc = 0.0;
            let mut class = 0usize;
            for (i, &(_, share, ..)) in classes.iter().enumerate() {
                acc += share;
                if pick < acc {
                    class = i;
                    break;
                }
            }
            let epd = vm * ENDPOINTS_PER_VM + (rng.next_u64() % ENDPOINTS_PER_VM) + 1;
            let lane =
                router.route(&VphiRequest::Send { epd, len: classes[class].0 as u32 }) as u64;
            pending.push((t_ns, class, lane));
            if pending.len() < batch {
                continue;
            }
            // Flush: the submitter marshals every entry, then one doorbell
            // covers the batch; each entry's wakeup share is notify/batch
            // (EVENT_IDX coalesces the burst's completion irqs the same
            // way the backend's burst drain coalesces its kicks).
            for &(arrival, class, lane) in &pending {
                let (_, _, svc, fill, notify) = classes[class];
                let submit_cost = fill.as_nanos() + notify.as_nanos() / batch as u64;
                let start = vcpu_free.max(arrival);
                vcpu_free = start + submit_cost;
                let lane_start = lane_free[lane as usize].max(vcpu_free);
                lane_free[lane as usize] = lane_start + svc.as_nanos();
                latencies.push(lane_free[lane as usize] - arrival);
            }
            pending.clear();
        }
        // Tail batch: flushed short at the horizon.
        let short = pending.len().max(1) as u64;
        for &(arrival, class, lane) in &pending {
            let (_, _, svc, fill, notify) = classes[class];
            let submit_cost = fill.as_nanos() + notify.as_nanos() / short;
            let start = vcpu_free.max(arrival);
            vcpu_free = start + submit_cost;
            let lane_start = lane_free[lane as usize].max(vcpu_free);
            lane_free[lane as usize] = lane_start + svc.as_nanos();
            latencies.push(lane_free[lane as usize] - arrival);
        }
    }

    latencies.sort_unstable();
    let n = latencies.len();
    let pct = |p: f64| -> SimDuration {
        let idx = ((n as f64 * p) as usize).min(n.saturating_sub(1));
        SimDuration::from_nanos(latencies.get(idx).copied().unwrap_or(0))
    };
    OpenLoopRow {
        batch,
        rate_per_vm,
        vms: OPEN_LOOP_VMS,
        requests: n as u64,
        throughput_rps: n as f64 / HORIZON_S,
        p50: pct(0.50),
        p99: pct(0.99),
        p999: pct(0.999),
    }
}

/// Measure one request class on the real stack and split its timeline
/// into (shard service, guest fill, per-request notify cost).
fn measure_class(bytes: u64, port: Port) -> (SimDuration, SimDuration, SimDuration) {
    let host = VphiHost::new(1);
    let sink = spawn_device_sink(&host, port);
    let vm = host.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let guest = vm.open_scif(&mut tl).expect("open");
    guest.connect(ScifAddr::new(host.device_node(0), port), &mut tl).expect("connect");
    let data = vec![0x5Au8; bytes as usize];
    let mut send_tl = Timeline::new();
    guest.send(&data, &mut send_tl).expect("send");
    let fill: SimDuration = GUEST_FILL.iter().map(|&l| send_tl.total_for(l)).sum();
    let notify: SimDuration = GUEST_NOTIFY.iter().map(|&l| send_tl.total_for(l)).sum();
    let svc = send_tl.total().saturating_sub(fill).saturating_sub(notify);
    let mut tl_close = Timeline::new();
    let _ = guest.close(&mut tl_close);
    vm.shutdown();
    let _ = sink.join();
    (svc, fill, notify)
}

/// An actual submit/reap run: 4 batches of [`OPEN_LOOP_BATCH`] sends
/// through the SQ/CQ API, returning the doorbell ledger both sides kept.
fn ledger_run() -> DoorbellLedger {
    let host = VphiHost::new(1);
    let sink = spawn_device_sink(&host, Port(886));
    let vm = host.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let guest = vm.open_scif(&mut tl).expect("open");
    guest.connect(ScifAddr::new(host.device_node(0), Port(886)), &mut tl).expect("connect");
    let payload = vec![0x5Au8; KIB as usize];
    let mut cq = vphi::Cq::new();
    for _ in 0..4 {
        let mut sq = Sq::new();
        for _ in 0..OPEN_LOOP_BATCH {
            sq.push(SqEntry::send(&payload));
        }
        let tokens = guest.submit(&mut sq, &mut tl).expect("submit");
        cq.watch(&tokens);
        let reaped = guest.reap(&mut cq, tokens.len(), tokens.len(), &mut tl).expect("reap");
        assert_eq!(reaped, OPEN_LOOP_BATCH, "short reap");
        for e in cq.drain() {
            e.result.expect("batched send failed");
        }
    }
    let fs = vm.frontend().stats();
    let bs = &vm.backend().inner().stats;
    let ledger = DoorbellLedger {
        batches_submitted: fs.batches_submitted,
        batch_entries: fs.batch_entries,
        batch_kicks: fs.batch_kicks,
        tokens_reaped: fs.tokens_reaped,
        burst_drains: bs.burst_drains.load(std::sync::atomic::Ordering::Relaxed),
        burst_chains: bs.burst_chains.load(std::sync::atomic::Ordering::Relaxed),
    };
    assert_eq!(vm.frontend().pending_tokens(), 0, "leaked pending tokens");
    let mut tl_close = Timeline::new();
    let _ = guest.close(&mut tl_close);
    vm.shutdown();
    let _ = sink.join();
    ledger
}

/// Fig. 4's 1-byte anchor through the (now submit/reap-backed) blocking
/// path.
fn one_byte_latency(port: Port) -> SimDuration {
    let host = VphiHost::new(1);
    let sink = spawn_device_sink(&host, port);
    let vm = host.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let guest = vm.open_scif(&mut tl).expect("open");
    guest.connect(ScifAddr::new(host.device_node(0), port), &mut tl).expect("connect");
    let mut send_tl = Timeline::new();
    guest.send(&[0x5A], &mut send_tl).expect("send");
    let latency = send_tl.total();
    let mut tl_close = Timeline::new();
    let _ = guest.close(&mut tl_close);
    vm.shutdown();
    let _ = sink.join();
    latency
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_loop_meets_the_acceptance_floors() {
        let report = open_loop();
        // Batched submission sustains ≥ 2× the one-per-kick saturation
        // throughput at the same p99 SLO.
        assert!(
            report.batching_speedup() >= 2.0,
            "batching speedup {:.2}x (batched {:.0} rps vs single {:.0} rps)",
            report.batching_speedup(),
            report.batched_saturation_rps(),
            report.single_saturation_rps(),
        );
        // The doorbell ledger proves the amortization on the real stack:
        // far less than one kick per submitted entry, and the backend's
        // drains popped multi-chain bursts.
        assert!(
            report.ledger.kicks_per_submission() <= 0.5,
            "kicks/submission = {:.3} (ledger {:?})",
            report.ledger.kicks_per_submission(),
            report.ledger,
        );
        assert_eq!(report.ledger.tokens_reaped, report.ledger.batch_entries);
        assert!(report.ledger.chains_per_drain() > 1.0, "ledger {:?}", report.ledger);
        // The redesign must not move the blocking anchor by a nanosecond.
        assert_eq!(report.anchor, SimDuration::from_micros(382));
    }

    #[test]
    fn open_loop_latency_behaves_under_load() {
        let report = open_loop();
        // One-per-kick: p99 degrades monotonically with offered load (the
        // submitting vCPU is an M/D/1 queue whose server never gets
        // cheaper).
        let p99s: Vec<u64> =
            report.rows.iter().filter(|r| r.batch == 1).map(|r| r.p99.as_nanos()).collect();
        for pair in p99s.windows(2) {
            assert!(pair[1] >= pair[0], "p99 improved under load: {p99s:?}");
        }
        // Batched: not monotone at the low end (a faster-filling batch
        // waits *less* for its doorbell), but the whole sweep stays
        // inside the SLO — batching never saturates at these rates.
        for r in report.rows.iter().filter(|r| r.batch == OPEN_LOOP_BATCH) {
            assert!(
                r.p99 <= SLO_P99,
                "batched p99 {} breached the SLO at {} rps",
                r.p99,
                r.rate_per_vm
            );
        }
        // Percentiles are ordered within every row.
        for r in &report.rows {
            assert!(r.p50 <= r.p99 && r.p99 <= r.p999, "{r:?}");
        }
    }

    #[test]
    fn open_loop_is_bit_reproducible() {
        let a = open_loop();
        let b = open_loop();
        assert_eq!(a, b, "OPEN-LOOP differed across runs");
    }
}

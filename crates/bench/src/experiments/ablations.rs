//! Ablations of vPHI's design choices (paper §III discusses each
//! trade-off; the hybrid variants are its stated future work).

use vphi::backend::DispatchPolicy;
use vphi::builder::{VmConfig, VphiHost, VphiVm};
use vphi::frontend::WaitScheme;
use vphi_scif::{Port, ScifAddr};
use vphi_sim_core::cost::KMALLOC_MAX_SIZE;
use vphi_sim_core::units::{KIB, MIB};
use vphi_sim_core::{SimDuration, SpanLabel, Timeline};
use vphi_trace::size_bucket;

use crate::support::spawn_device_sink;

/// ABL-WAIT row: one (scheme, size) measurement — latency plus the
/// spin-burn side of the trade-off.
#[derive(Debug, Clone, PartialEq)]
pub struct WaitRow {
    pub scheme: &'static str,
    pub bytes: u64,
    pub latency: SimDuration,
    /// Did this request give up spinning and pay the wake-up cost?
    pub slept: bool,
    /// Virtual ns the vCPU burned spinning for this request (a sleeper
    /// burns at most its budget, a spinner exactly the service time).
    pub spin_burn_ns: u64,
    /// True backend service ns of this request.
    pub svc_ns: u64,
}

/// This size's (spin burn, true service) totals from the frontend's
/// per-bucket profile; rows are deltas of consecutive snapshots.
fn bucket_totals(vm: &VphiVm, bytes: u64) -> (u64, u64) {
    vm.frontend()
        .wait_profile()
        .into_iter()
        .find(|r| r.bucket == size_bucket(bytes))
        .map(|r| (r.spin_burn_ns, r.svc_ns))
        .unwrap_or((0, 0))
}

/// ABL-WAIT: interrupt vs static-hybrid vs adaptive vs busy-poll
/// completion notification.  Three unmeasured warm-up sends per size let
/// the adaptive scheme's EWMA converge (a no-op for the static schemes)
/// before the measured request.
pub fn abl_wait() -> Vec<WaitRow> {
    let host = VphiHost::new(1);
    let schemes = [
        WaitScheme::Interrupt,
        WaitScheme::STATIC_HYBRID,
        WaitScheme::ADAPTIVE,
        WaitScheme::Polling,
    ];
    let sizes = [1u64, 4 * KIB, 64 * KIB, MIB, 4 * MIB];

    let mut rows = Vec::new();
    for (i, scheme) in schemes.into_iter().enumerate() {
        let sink = spawn_device_sink(&host, Port(830 + i as u16));
        let vm = host.spawn_vm(VmConfig::builder().scheme(scheme).build());
        let mut tl = Timeline::new();
        let guest = vm.open_scif(&mut tl).expect("open");
        guest
            .connect(ScifAddr::new(host.device_node(0), Port(830 + i as u16)), &mut tl)
            .expect("connect");
        for bytes in sizes {
            let data = vec![0u8; bytes as usize];
            for _ in 0..3 {
                let mut warm_tl = Timeline::new();
                guest.send(&data, &mut warm_tl).expect("send");
            }
            let (burn_before, svc_before) = bucket_totals(&vm, bytes);
            let mut send_tl = Timeline::new();
            guest.send(&data, &mut send_tl).expect("send");
            let (burn_after, svc_after) = bucket_totals(&vm, bytes);
            rows.push(WaitRow {
                scheme: scheme.label(),
                bytes,
                latency: send_tl.total(),
                slept: send_tl.total_for(SpanLabel::GuestWakeup) > SimDuration::ZERO,
                spin_burn_ns: burn_after - burn_before,
                svc_ns: svc_after - svc_before,
            });
        }
        let mut tl_close = Timeline::new();
        let _ = guest.close(&mut tl_close);
        vm.shutdown();
        let _ = sink.join();
    }
    rows
}

/// ABL-CHUNK row: staging chunk size vs large-transfer bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkRow {
    pub chunk: u64,
    pub transfer: u64,
    pub bandwidth: f64,
}

/// ABL-CHUNK: the `KMALLOC_MAX_SIZE` staging-chunk trade-off — each chunk
/// pays the full per-request overhead, so smaller chunks mean lower
/// large-transfer bandwidth.
pub fn abl_chunk() -> Vec<ChunkRow> {
    let host = VphiHost::new(1);
    let transfer = 64 * MIB;
    let chunks = [256 * KIB, 512 * KIB, MIB, 2 * MIB, KMALLOC_MAX_SIZE];

    let mut rows = Vec::new();
    for (i, chunk) in chunks.into_iter().enumerate() {
        let sink = spawn_device_sink(&host, Port(840 + i as u16));
        let vm = host.spawn_vm(VmConfig::builder().chunk_size(chunk).build());
        let mut tl = Timeline::new();
        let guest = vm.open_scif(&mut tl).expect("open");
        guest
            .connect(ScifAddr::new(host.device_node(0), Port(840 + i as u16)), &mut tl)
            .expect("connect");
        let mut send_tl = Timeline::new();
        guest.send_timed(transfer, &mut send_tl).expect("send");
        rows.push(ChunkRow { chunk, transfer, bandwidth: send_tl.total().throughput(transfer) });
        let mut tl_close = Timeline::new();
        let _ = guest.close(&mut tl_close);
        vm.shutdown();
        let _ = sink.join();
    }
    rows
}

/// ABL-BLOCK row.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockRow {
    pub policy: &'static str,
    pub bytes: u64,
    pub latency: SimDuration,
    /// Cumulative virtual time this VM was frozen in blocking handlers
    /// after the request.
    pub vm_paused: SimDuration,
}

/// ABL-BLOCK: blocking vs worker-thread backend dispatch — the trade-off
/// between freezing the VM and paying thread spawn/retire per event.
pub fn abl_block() -> Vec<BlockRow> {
    let host = VphiHost::new(1);
    let policies: [(&'static str, DispatchPolicy); 3] = [
        ("blocking(paper)", DispatchPolicy::PAPER),
        ("hybrid(64KiB)", DispatchPolicy::hybrid(64 * KIB)),
        ("worker(all)", DispatchPolicy::hybrid(0)),
    ];
    let sizes = [1u64, 64 * KIB, 4 * MIB];

    let mut rows = Vec::new();
    for (i, (name, dispatch)) in policies.into_iter().enumerate() {
        let sink = spawn_device_sink(&host, Port(850 + i as u16));
        let vm = host.spawn_vm(VmConfig::builder().dispatch(dispatch).build());
        let mut tl = Timeline::new();
        let guest = vm.open_scif(&mut tl).expect("open");
        guest
            .connect(ScifAddr::new(host.device_node(0), Port(850 + i as u16)), &mut tl)
            .expect("connect");
        for bytes in sizes {
            let paused_before = vm.vm_paused_total();
            let data = vec![0u8; bytes as usize];
            let mut send_tl = Timeline::new();
            guest.send(&data, &mut send_tl).expect("send");
            rows.push(BlockRow {
                policy: name,
                bytes,
                latency: send_tl.total(),
                vm_paused: vm.vm_paused_total().saturating_sub(paused_before),
            });
        }
        let mut tl_close = Timeline::new();
        let _ = guest.close(&mut tl_close);
        vm.shutdown();
        let _ = sink.join();
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_beats_interrupt_five_fold_within_the_burn_budget() {
        let rows = abl_wait();
        let find = |scheme: &str, bytes: u64| {
            rows.iter().find(|r| r.scheme == scheme && r.bytes == bytes).cloned().unwrap()
        };
        // The calibrated interrupt anchor is untouched: 382 µs at 1 byte.
        let int1 = find("interrupt", 1);
        assert_eq!(int1.latency, SimDuration::from_micros(382));
        assert!(int1.slept);
        assert_eq!(int1.spin_burn_ns, 0, "an immediate sleeper burns nothing");
        // Adaptive catches the 1-byte send spinning: no wake-up, no MSI —
        // at least 5× below the interrupt anchor.
        let ad1 = find("adaptive", 1);
        assert!(!ad1.slept);
        assert!(
            ad1.latency.as_nanos() * 5 <= int1.latency.as_nanos(),
            "adaptive 1B = {} vs interrupt {}",
            ad1.latency,
            int1.latency
        );
        let poll1 = find("busy-poll", 1);
        assert!(poll1.latency < SimDuration::from_micros(50), "polling 1B = {}", poll1.latency);
        assert!(!poll1.slept);
        // Spin burn never exceeds 110% of true service time, any scheme,
        // any size (by construction it cannot even exceed 100%).
        for r in &rows {
            assert!(
                r.spin_burn_ns * 10 <= r.svc_ns * 11,
                "{} @ {}B burned {} ns of {} ns service",
                r.scheme,
                r.bytes,
                r.spin_burn_ns,
                r.svc_ns
            );
        }
        // Static hybrid splits at its fixed budget: spins small, sleeps
        // bulk (the paper's proposed hybrid, as a time budget).
        let sh_small = find("static-hybrid", 1);
        let sh_large = find("static-hybrid", 4 * MIB);
        assert!(!sh_small.slept);
        assert!(sh_large.slept);
        assert_eq!(sh_small.latency, poll1.latency);
        // Adaptive learned that bulk sends always outlive any worthwhile
        // budget: the measured request sleeps immediately, zero burn.
        let ad_large = find("adaptive", 4 * MIB);
        assert!(ad_large.slept);
        assert_eq!(ad_large.spin_burn_ns, 0, "EWMA converged to sleep-at-once");
        assert_eq!(ad_large.latency, find("interrupt", 4 * MIB).latency);
        // Busy-poll burns exactly the service time — the CPU cost column.
        let poll_large = find("busy-poll", 4 * MIB);
        assert!(!poll_large.slept);
        assert_eq!(poll_large.spin_burn_ns, poll_large.svc_ns);
        assert!(poll_large.spin_burn_ns > 0);
    }

    #[test]
    fn smaller_chunks_hurt_bandwidth() {
        let rows = abl_chunk();
        for pair in rows.windows(2) {
            assert!(
                pair[1].bandwidth > pair[0].bandwidth,
                "bigger chunks must be faster: {pair:?}"
            );
        }
        // 4 MiB chunks vs 256 KiB chunks: a big factor.
        let worst = rows.first().unwrap().bandwidth;
        let best = rows.last().unwrap().bandwidth;
        assert!(best / worst > 3.0, "chunking effect too weak: {best} / {worst}");
    }

    #[test]
    fn worker_dispatch_trades_latency_for_vm_liveness() {
        let rows = abl_block();
        let find = |policy: &str, bytes: u64| {
            rows.iter().find(|r| r.policy == policy && r.bytes == bytes).cloned().unwrap()
        };
        // Blocking pauses the VM for the service time; worker doesn't.
        let blk = find("blocking(paper)", 4 * MIB);
        let wrk = find("worker(all)", 4 * MIB);
        assert!(blk.vm_paused > SimDuration::ZERO);
        assert_eq!(wrk.vm_paused, SimDuration::ZERO);
        // Worker adds the spawn cost to latency.
        assert!(wrk.latency > blk.latency);
        // The hybrid blocks for small, workers for large.
        let hyb_small = find("hybrid(64KiB)", 1);
        let hyb_large = find("hybrid(64KiB)", 4 * MIB);
        assert!(hyb_small.vm_paused > SimDuration::ZERO);
        assert_eq!(hyb_large.vm_paused, SimDuration::ZERO);
    }
}

//! Ablations of vPHI's design choices (paper §III discusses each
//! trade-off; the hybrid variants are its stated future work).

use vphi::backend::DispatchPolicy;
use vphi::builder::{VmConfig, VphiHost};
use vphi::frontend::WaitScheme;
use vphi_scif::{Port, ScifAddr};
use vphi_sim_core::cost::KMALLOC_MAX_SIZE;
use vphi_sim_core::units::{KIB, MIB};
use vphi_sim_core::{SimDuration, Timeline};

use crate::support::spawn_device_sink;

/// ABL-WAIT row: one (scheme, size) latency measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct WaitRow {
    pub scheme: &'static str,
    pub bytes: u64,
    pub latency: SimDuration,
    /// Did this request busy-wait (burning its vCPU for the service time)?
    pub polled: bool,
}

/// ABL-WAIT: interrupt vs polling vs hybrid waiting scheme.
pub fn abl_wait() -> Vec<WaitRow> {
    let host = VphiHost::new(1);
    let schemes = [WaitScheme::Interrupt, WaitScheme::Polling, WaitScheme::DEFAULT_HYBRID];
    let sizes = [1u64, 4 * KIB, 64 * KIB, MIB, 4 * MIB];

    let mut rows = Vec::new();
    for (i, scheme) in schemes.into_iter().enumerate() {
        let sink = spawn_device_sink(&host, Port(830 + i as u16));
        let vm = host.spawn_vm(VmConfig { scheme, ..VmConfig::default() });
        let mut tl = Timeline::new();
        let guest = vm.open_scif(&mut tl).expect("open");
        guest
            .connect(ScifAddr::new(host.device_node(0), Port(830 + i as u16)), &mut tl)
            .expect("connect");
        for bytes in sizes {
            let data = vec![0u8; bytes as usize];
            let mut send_tl = Timeline::new();
            guest.send(&data, &mut send_tl).expect("send");
            rows.push(WaitRow {
                scheme: scheme.name(),
                bytes,
                latency: send_tl.total(),
                polled: scheme.polls_for(bytes),
            });
        }
        let mut tl_close = Timeline::new();
        let _ = guest.close(&mut tl_close);
        vm.shutdown();
        let _ = sink.join();
    }
    rows
}

/// ABL-CHUNK row: staging chunk size vs large-transfer bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkRow {
    pub chunk: u64,
    pub transfer: u64,
    pub bandwidth: f64,
}

/// ABL-CHUNK: the `KMALLOC_MAX_SIZE` staging-chunk trade-off — each chunk
/// pays the full per-request overhead, so smaller chunks mean lower
/// large-transfer bandwidth.
pub fn abl_chunk() -> Vec<ChunkRow> {
    let host = VphiHost::new(1);
    let transfer = 64 * MIB;
    let chunks = [256 * KIB, 512 * KIB, MIB, 2 * MIB, KMALLOC_MAX_SIZE];

    let mut rows = Vec::new();
    for (i, chunk) in chunks.into_iter().enumerate() {
        let sink = spawn_device_sink(&host, Port(840 + i as u16));
        let vm = host.spawn_vm(VmConfig { chunk_size: chunk, ..VmConfig::default() });
        let mut tl = Timeline::new();
        let guest = vm.open_scif(&mut tl).expect("open");
        guest
            .connect(ScifAddr::new(host.device_node(0), Port(840 + i as u16)), &mut tl)
            .expect("connect");
        let mut send_tl = Timeline::new();
        guest.send_timed(transfer, &mut send_tl).expect("send");
        rows.push(ChunkRow { chunk, transfer, bandwidth: send_tl.total().throughput(transfer) });
        let mut tl_close = Timeline::new();
        let _ = guest.close(&mut tl_close);
        vm.shutdown();
        let _ = sink.join();
    }
    rows
}

/// ABL-BLOCK row.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockRow {
    pub policy: &'static str,
    pub bytes: u64,
    pub latency: SimDuration,
    /// Cumulative virtual time this VM was frozen in blocking handlers
    /// after the request.
    pub vm_paused: SimDuration,
}

/// ABL-BLOCK: blocking vs worker-thread backend dispatch — the trade-off
/// between freezing the VM and paying thread spawn/retire per event.
pub fn abl_block() -> Vec<BlockRow> {
    let host = VphiHost::new(1);
    let policies: [(&'static str, DispatchPolicy); 3] = [
        ("blocking(paper)", DispatchPolicy::PAPER),
        ("hybrid(64KiB)", DispatchPolicy::hybrid(64 * KIB)),
        ("worker(all)", DispatchPolicy::hybrid(0)),
    ];
    let sizes = [1u64, 64 * KIB, 4 * MIB];

    let mut rows = Vec::new();
    for (i, (name, dispatch)) in policies.into_iter().enumerate() {
        let sink = spawn_device_sink(&host, Port(850 + i as u16));
        let vm = host.spawn_vm(VmConfig { dispatch, ..VmConfig::default() });
        let mut tl = Timeline::new();
        let guest = vm.open_scif(&mut tl).expect("open");
        guest
            .connect(ScifAddr::new(host.device_node(0), Port(850 + i as u16)), &mut tl)
            .expect("connect");
        for bytes in sizes {
            let paused_before = vm.vm_paused_total();
            let data = vec![0u8; bytes as usize];
            let mut send_tl = Timeline::new();
            guest.send(&data, &mut send_tl).expect("send");
            rows.push(BlockRow {
                policy: name,
                bytes,
                latency: send_tl.total(),
                vm_paused: vm.vm_paused_total().saturating_sub(paused_before),
            });
        }
        let mut tl_close = Timeline::new();
        let _ = guest.close(&mut tl_close);
        vm.shutdown();
        let _ = sink.join();
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polling_beats_interrupt_for_small_but_burns_cpu() {
        let rows = abl_wait();
        let find = |scheme: &str, bytes: u64| {
            rows.iter().find(|r| r.scheme == scheme && r.bytes == bytes).cloned().unwrap()
        };
        // 1-byte: polling is far cheaper than the 382 µs interrupt path.
        let int1 = find("interrupt", 1);
        let poll1 = find("polling", 1);
        assert_eq!(int1.latency, SimDuration::from_micros(382));
        assert!(poll1.latency < SimDuration::from_micros(50), "polling 1B = {}", poll1.latency);
        assert!(poll1.polled && !int1.polled);
        // Hybrid: polls small, sleeps large.
        let hyb_small = find("hybrid", 1);
        let hyb_large = find("hybrid", 4 * MIB);
        assert!(hyb_small.polled);
        assert!(!hyb_large.polled);
        assert_eq!(hyb_small.latency, poll1.latency);
        assert_eq!(hyb_large.latency, find("interrupt", 4 * MIB).latency);
    }

    #[test]
    fn smaller_chunks_hurt_bandwidth() {
        let rows = abl_chunk();
        for pair in rows.windows(2) {
            assert!(
                pair[1].bandwidth > pair[0].bandwidth,
                "bigger chunks must be faster: {pair:?}"
            );
        }
        // 4 MiB chunks vs 256 KiB chunks: a big factor.
        let worst = rows.first().unwrap().bandwidth;
        let best = rows.last().unwrap().bandwidth;
        assert!(best / worst > 3.0, "chunking effect too weak: {best} / {worst}");
    }

    #[test]
    fn worker_dispatch_trades_latency_for_vm_liveness() {
        let rows = abl_block();
        let find = |policy: &str, bytes: u64| {
            rows.iter().find(|r| r.policy == policy && r.bytes == bytes).cloned().unwrap()
        };
        // Blocking pauses the VM for the service time; worker doesn't.
        let blk = find("blocking(paper)", 4 * MIB);
        let wrk = find("worker(all)", 4 * MIB);
        assert!(blk.vm_paused > SimDuration::ZERO);
        assert_eq!(wrk.vm_paused, SimDuration::ZERO);
        // Worker adds the spawn cost to latency.
        assert!(wrk.latency > blk.latency);
        // The hybrid blocks for small, workers for large.
        let hyb_small = find("hybrid(64KiB)", 1);
        let hyb_large = find("hybrid(64KiB)", 4 * MIB);
        assert!(hyb_small.vm_paused > SimDuration::ZERO);
        assert_eq!(hyb_large.vm_paused, SimDuration::ZERO);
    }
}

//! The **§IV-B breakdown**: where vPHI's small-message overhead goes.
//!
//! "Based on the breakdown analysis, we conclude that 93% of this overhead
//! attributes to the waiting scheme of vPHI inside the frontend driver."

use vphi::builder::{VmConfig, VphiHost};
use vphi_scif::{Port, ScifAddr};
use vphi_sim_core::{SimDuration, SpanLabel, Timeline};

use crate::support::spawn_device_sink;

/// One overhead component.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakdownRow {
    pub label: SpanLabel,
    pub time: SimDuration,
    /// Share of the total *virtualization overhead* (native-path spans are
    /// reported with share 0).
    pub overhead_share: f64,
}

/// Regenerate the 1-byte-send breakdown.
pub fn breakdown_one_byte() -> (SimDuration, SimDuration, Vec<BreakdownRow>) {
    let host = VphiHost::new(1);
    let sink = spawn_device_sink(&host, Port(820));
    let vm = host.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let guest = vm.open_scif(&mut tl).expect("open");
    guest.connect(ScifAddr::new(host.device_node(0), Port(820)), &mut tl).expect("connect");

    let mut send_tl = Timeline::new();
    guest.send(&[1], &mut send_tl).expect("send");

    let total = send_tl.total();
    let overhead = send_tl.virtualization_overhead();
    let rows = send_tl
        .breakdown()
        .into_iter()
        .map(|(label, time)| BreakdownRow {
            label,
            time,
            overhead_share: if label.is_virtualization_overhead() && !overhead.is_zero() {
                time.as_nanos() as f64 / overhead.as_nanos() as f64
            } else {
                0.0
            },
        })
        .collect();

    let mut tl_close = Timeline::new();
    let _ = guest.close(&mut tl_close);
    vm.shutdown();
    let _ = sink.join();
    (total, overhead, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiting_scheme_is_93_percent_of_overhead() {
        let (total, overhead, rows) = breakdown_one_byte();
        assert_eq!(total, SimDuration::from_micros(382));
        assert_eq!(overhead, SimDuration::from_micros(375));
        let wakeup =
            rows.iter().find(|r| r.label == SpanLabel::GuestWakeup).expect("wakeup span present");
        assert!((wakeup.overhead_share - 0.93).abs() < 0.001, "share = {}", wakeup.overhead_share);
        // Shares of overhead spans sum to 1.
        let sum: f64 = rows.iter().map(|r| r.overhead_share).sum();
        assert!((sum - 1.0).abs() < 1e-9, "shares sum to {sum}");
    }
}

//! **Figure 5** — remote memory access throughput, host vs vPHI.
//!
//! The paper: a device executable registers a GDDR window; the host (or
//! VM) client performs `scif_readfrom`-family remote reads.  Native peaks
//! at 6.4 GB/s, vPHI at 4.6 GB/s — 72% — and the curves flatten once the
//! per-request constant is amortized.

use vphi::builder::{VmConfig, VphiHost};
use vphi_scif::{Port, RmaFlags, ScifAddr};
use vphi_sim_core::units::{KIB, MIB};
use vphi_sim_core::Timeline;

use crate::support::{spawn_device_window, wait_for_guest_window, wait_for_native_window};

/// One x-axis point of Figure 5 (bandwidths in bytes/s of virtual time).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Row {
    pub bytes: u64,
    pub host_bw: f64,
    pub vphi_bw: f64,
}

impl Fig5Row {
    pub fn ratio(&self) -> f64 {
        self.vphi_bw / self.host_bw
    }
}

/// The transfer sizes the figure sweeps.
pub fn fig5_sizes() -> Vec<u64> {
    vec![64 * KIB, 256 * KIB, MIB, 4 * MIB, 16 * MIB, 64 * MIB, 128 * MIB, 256 * MIB]
}

/// Regenerate Figure 5.
pub fn fig5_throughput() -> Vec<Fig5Row> {
    let host = VphiHost::new(1);
    let max = *fig5_sizes().last().expect("nonempty sizes");

    // Native client against a device window.
    let server = spawn_device_window(&host, Port(810), max);
    let native = host.native_endpoint().expect("native endpoint");
    let mut tl = Timeline::new();
    native.connect(ScifAddr::new(host.device_node(0), Port(810)), &mut tl).expect("connect");
    wait_for_native_window(&native);

    // vPHI client.
    let server2 = spawn_device_window(&host, Port(811), max);
    let vm = host.spawn_vm(VmConfig::builder().mem_size(max + 64 * MIB).build());
    let guest = vm.open_scif(&mut tl).expect("guest open");
    guest.connect(ScifAddr::new(host.device_node(0), Port(811)), &mut tl).expect("guest connect");
    wait_for_guest_window(&guest, &vm);

    let mut rows = Vec::new();
    let mut native_buf = vec![0u8; max as usize];
    for bytes in fig5_sizes() {
        let mut host_tl = Timeline::new();
        native
            .vreadfrom(&mut native_buf[..bytes as usize], 0, RmaFlags::SYNC, &mut host_tl)
            .expect("native vread");

        let gbuf = vm.alloc_buf(bytes).expect("guest buf");
        let mut vphi_tl = Timeline::new();
        guest.vreadfrom(&gbuf, 0, RmaFlags::SYNC, &mut vphi_tl).expect("vphi vread");
        drop(gbuf);

        rows.push(Fig5Row {
            bytes,
            host_bw: host_tl.total().throughput(bytes),
            vphi_bw: vphi_tl.total().throughput(bytes),
        });
    }

    native.close();
    let mut tl_close = Timeline::new();
    let _ = guest.close(&mut tl_close);
    vm.shutdown();
    let _ = server.join();
    let _ = server2.join();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_reproduces_paper_shape() {
        let rows = fig5_throughput();
        let peak = rows.last().unwrap();
        // Native peak ≈ 6.4 GB/s; vPHI ≈ 4.6 GB/s → 72%.
        assert!((peak.host_bw / 1e9 - 6.4).abs() < 0.05, "native peak = {}", peak.host_bw);
        assert!((peak.vphi_bw / 1e9 - 4.6).abs() < 0.1, "vphi peak = {}", peak.vphi_bw);
        assert!((peak.ratio() - 0.72).abs() < 0.01, "ratio = {}", peak.ratio());
        // Bandwidth grows with size (the latency floor dominates small
        // transfers).
        for pair in rows.windows(2) {
            assert!(pair[1].host_bw >= pair[0].host_bw * 0.99);
            assert!(pair[1].vphi_bw >= pair[0].vphi_bw * 0.99);
        }
        // The gap hurts small transfers far more than large ones.
        assert!(rows[0].ratio() < 0.25, "small-transfer ratio = {}", rows[0].ratio());
    }
}

//! **Figure 4** — send-receive communication latency, host vs vPHI.
//!
//! The paper: a SCIF server on the card blocks in `scif_recv`; a client on
//! the host (or in the VM) connects and sends.  Native 1-byte latency is
//! 7 µs; vPHI's is 382 µs, and the 375 µs offset stays constant with size.

use vphi::builder::{VmConfig, VphiHost};
use vphi_scif::{Port, ScifAddr};
use vphi_sim_core::units::KIB;
use vphi_sim_core::{SimDuration, Timeline};

use crate::support::spawn_device_sink;

/// One x-axis point of Figure 4.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig4Row {
    pub bytes: u64,
    pub host: SimDuration,
    pub vphi: SimDuration,
}

impl Fig4Row {
    pub fn overhead(&self) -> SimDuration {
        self.vphi.saturating_sub(self.host)
    }
}

/// The sizes the figure sweeps.
pub fn fig4_sizes() -> Vec<u64> {
    vec![1, 16, 64, 256, KIB, 4 * KIB, 16 * KIB, 64 * KIB]
}

/// Regenerate Figure 4.
pub fn fig4_latency() -> Vec<Fig4Row> {
    let host = VphiHost::new(1);

    // Native client.
    let sink = spawn_device_sink(&host, Port(800));
    let native = host.native_endpoint().expect("native endpoint");
    let mut tl = Timeline::new();
    native.connect(ScifAddr::new(host.device_node(0), Port(800)), &mut tl).expect("connect");

    // vPHI client.
    let sink2 = spawn_device_sink(&host, Port(801));
    let vm = host.spawn_vm(VmConfig::default());
    let guest = vm.open_scif(&mut tl).expect("guest open");
    guest.connect(ScifAddr::new(host.device_node(0), Port(801)), &mut tl).expect("guest connect");

    let mut rows = Vec::new();
    for bytes in fig4_sizes() {
        let data = vec![0x5Au8; bytes as usize];
        let mut host_tl = Timeline::new();
        native.send(&data, &mut host_tl).expect("native send");
        let mut vphi_tl = Timeline::new();
        guest.send(&data, &mut vphi_tl).expect("vphi send");
        rows.push(Fig4Row { bytes, host: host_tl.total(), vphi: vphi_tl.total() });
    }

    native.close();
    let mut tl_close = Timeline::new();
    let _ = guest.close(&mut tl_close);
    vm.shutdown();
    let _ = sink.join();
    let _ = sink2.join();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_reproduces_paper_shape() {
        let rows = fig4_latency();
        assert_eq!(rows.len(), fig4_sizes().len());
        // Anchors.
        assert_eq!(rows[0].bytes, 1);
        assert_eq!(rows[0].host, SimDuration::from_micros(7));
        assert_eq!(rows[0].vphi, SimDuration::from_micros(382));
        // Constant offset (within the guest-copy term).
        let first = rows[0].overhead();
        let last = rows.last().unwrap().overhead();
        assert!(
            last.as_nanos().abs_diff(first.as_nanos()) < 20_000,
            "offset drifted: {first} → {last}"
        );
        // Monotone in size on both series.
        for pair in rows.windows(2) {
            assert!(pair[1].host >= pair[0].host);
            assert!(pair[1].vphi >= pair[0].vphi);
        }
    }

    #[test]
    fn figure4_is_bit_reproducible() {
        // The README claims every figure is deterministic; virtual time
        // must not depend on thread scheduling, wall clock, or ASLR.
        let a = fig4_latency();
        let b = fig4_latency();
        assert_eq!(a, b, "figure 4 differed across runs");
    }
}

//! **ABL-FAULTS** — what the fault-injection subsystem costs when nothing
//! is failing, and what recovery costs when something is.
//!
//! `vphi-faults` leaves its hooks compiled into every production path, so
//! the subsystem's steady-state price is the price of a disarmed
//! [`FaultHook::fire`] — one `OnceLock` fast-path load.  This ablation
//! pins that claim three ways:
//!
//! * wall nanoseconds per `fire()` call, disarmed and armed-but-idle
//!   (a plan with zero points: every crossing does the full bookkeeping),
//! * the 1-byte vPHI send: virtual latency must stay *exactly* at the
//!   Fig. 4 anchor (382 µs) with hooks armed, and the hooks' share of the
//!   send's wall time must stay under 1%,
//! * recovery: with two VMs on two cards, card 0 is failed and reset; the
//!   measurement is the reset's virtual latency, plus proof that only the
//!   victim VM's endpoints were quarantined and both VMs keep working.

use std::time::Instant;

use vphi::builder::{VmConfig, VphiHost, VphiVm};
use vphi::debugfs::VphiDebugReport;
use vphi_faults::{FaultHook, FaultInjector, FaultPlan, FaultSite};
use vphi_scif::{Port, ScifAddr, ScifError};
use vphi_sim_core::{SimDuration, Timeline};

use crate::support::spawn_device_sink_on;

/// Calls per hook-microbenchmark loop.
const FIRE_LOOPS: u64 = 2_000_000;
/// 1-byte sends timed for the wall-clock overhead estimate.
const SEND_SAMPLES: u32 = 256;

/// The ablation result (`BENCH_faults.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultsReport {
    /// Wall ns per `FaultHook::fire` with no injector armed.
    pub disarmed_ns_per_fire: f64,
    /// Wall ns per `fire` with an armed, zero-point plan (counting only).
    pub armed_idle_ns_per_fire: f64,
    /// Hook crossings one 1-byte guest send traverses.
    pub crossings_per_send: u64,
    /// Mean wall ns of a 1-byte guest send (hooks disarmed).
    pub send_wall_ns: f64,
    /// The hooks' share of the send wall time, in percent.
    pub hook_overhead_pct: f64,
    /// Virtual 1-byte send latency, hooks disarmed (the PR 2 baseline).
    pub latency_disarmed: SimDuration,
    /// Virtual 1-byte send latency with every hook armed (idle plan).
    pub latency_armed: SimDuration,
    /// Virtual latency of `reset_card(0)` with two VMs attached.
    pub reset_recovery: SimDuration,
    /// Endpoints quarantined on the victim VM (card 0).
    pub victim_quarantined: u64,
    /// Endpoints quarantined on the bystander VM (card 1).
    pub bystander_quarantined: u64,
    /// The bystander's post-reset send succeeded untouched.
    pub bystander_send_ok: bool,
    /// The victim reconnected to the reset card and sent again.
    pub victim_recovered_send_ok: bool,
}

/// Time `fire` in a tight loop; the disarmed case is the production cost.
fn ns_per_fire(hook: &FaultHook) -> f64 {
    // One warmup pass keeps the first-touch cost out of the measurement.
    for _ in 0..FIRE_LOOPS / 10 {
        std::hint::black_box(hook.fire(std::hint::black_box(FaultSite::PcieDmaError)));
    }
    let start = Instant::now();
    for _ in 0..FIRE_LOOPS {
        std::hint::black_box(hook.fire(std::hint::black_box(FaultSite::PcieDmaError)));
    }
    start.elapsed().as_nanos() as f64 / FIRE_LOOPS as f64
}

/// One connected 1-byte sender; returns (virtual latency, mean wall ns).
fn one_byte_sends(host: &VphiHost, port: Port) -> (SimDuration, f64, VphiVm) {
    let sink = spawn_device_sink_on(host, 0, port);
    let vm = host.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let guest = vm.open_scif(&mut tl).expect("open");
    guest.connect(ScifAddr::new(host.device_node(0), port), &mut tl).expect("connect");

    let mut first_tl = Timeline::new();
    guest.send(&[0x5A], &mut first_tl).expect("send");
    let start = Instant::now();
    for _ in 0..SEND_SAMPLES {
        let mut tl = Timeline::new();
        guest.send(&[0x5A], &mut tl).expect("send");
    }
    let wall_ns = start.elapsed().as_nanos() as f64 / SEND_SAMPLES as f64;

    let mut tlc = Timeline::new();
    let _ = guest.close(&mut tlc);
    let _ = sink.join();
    (first_tl.total(), wall_ns, vm)
}

fn total_crossings(injector: &FaultInjector) -> u64 {
    FaultSite::ALL.iter().map(|&s| injector.crossings_at(s)).sum()
}

/// Run the ablation.
pub fn abl_faults() -> FaultsReport {
    // --- Hook microbenchmark: disarmed vs armed-but-idle. ---
    let disarmed_hook = FaultHook::new();
    let disarmed_ns_per_fire = ns_per_fire(&disarmed_hook);

    let armed_hook = FaultHook::new();
    armed_hook.arm(std::sync::Arc::new(FaultInjector::new(FaultPlan::from_seed(0, 0))));
    let armed_idle_ns_per_fire = ns_per_fire(&armed_hook);

    // --- 1-byte send, hooks disarmed: the PR 2 baseline. ---
    let host = VphiHost::new(1);
    let (latency_disarmed, send_wall_ns, vm) = one_byte_sends(&host, Port(880));
    vm.shutdown();

    // --- Same send with every hook armed on an idle (zero-point) plan. ---
    let host_armed = VphiHost::new(1);
    let injector = host_armed.arm_faults(FaultPlan::from_seed(0, 0));
    let before = total_crossings(&injector);
    let (latency_armed, _, vm_armed) = one_byte_sends(&host_armed, Port(881));
    // The workload above did 1 + SEND_SAMPLES identical sends.
    let crossings_per_send = (total_crossings(&injector) - before) / (1 + u64::from(SEND_SAMPLES));
    vm_armed.shutdown();

    let hook_overhead_pct =
        100.0 * (crossings_per_send as f64 * disarmed_ns_per_fire) / send_wall_ns;

    // --- Recovery: two VMs on two cards, card 0 fails and is reset. ---
    let host2 = VphiHost::new(2);
    let sink_a = spawn_device_sink_on(&host2, 0, Port(882));
    let sink_b = spawn_device_sink_on(&host2, 1, Port(883));
    let vm_a = host2.spawn_vm(VmConfig::default());
    let vm_b = host2.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let guest_a = vm_a.open_scif(&mut tl).expect("victim open");
    guest_a.connect(ScifAddr::new(host2.device_node(0), Port(882)), &mut tl).expect("victim");
    let guest_b = vm_b.open_scif(&mut tl).expect("bystander open");
    guest_b.connect(ScifAddr::new(host2.device_node(1), Port(883)), &mut tl).expect("bystander");
    guest_a.send(&[1], &mut tl).expect("victim pre-fail send");
    guest_b.send(&[1], &mut tl).expect("bystander pre-fail send");

    host2.board(0).fail("abl-faults: injected lockup");
    // The victim observes the failure as a fatal ENODEV...
    let mut dead_tl = Timeline::new();
    assert_eq!(guest_a.send(&[2], &mut dead_tl), Err(ScifError::NoDev));
    // ...and recovery is one card reset, quarantining only card 0 users.
    let reset_recovery = host2.reset_card(0);

    let victim_quarantined = VphiDebugReport::collect(&vm_a).endpoints_quarantined;
    let bystander_quarantined = VphiDebugReport::collect(&vm_b).endpoints_quarantined;

    let mut after_tl = Timeline::new();
    let bystander_send_ok = guest_b.send(&[3], &mut after_tl).is_ok();

    // The victim's endpoint is gone (quarantined), but the VM itself can
    // open a fresh one against the recovered card and keep working.
    let sink_a2 = spawn_device_sink_on(&host2, 0, Port(884));
    let guest_a2 = vm_a.open_scif(&mut after_tl).expect("victim reopen");
    let victim_recovered_send_ok = guest_a2
        .connect(ScifAddr::new(host2.device_node(0), Port(884)), &mut after_tl)
        .and_then(|_| guest_a2.send(&[4], &mut after_tl))
        .is_ok();

    let mut tlc = Timeline::new();
    let _ = guest_a.close(&mut tlc);
    let _ = guest_a2.close(&mut tlc);
    let _ = guest_b.close(&mut tlc);
    vm_a.shutdown();
    vm_b.shutdown();
    let _ = sink_a.join();
    let _ = sink_a2.join();
    let _ = sink_b.join();

    FaultsReport {
        disarmed_ns_per_fire,
        armed_idle_ns_per_fire,
        crossings_per_send,
        send_wall_ns,
        hook_overhead_pct,
        latency_disarmed,
        latency_armed,
        reset_recovery,
        victim_quarantined,
        bystander_quarantined,
        bystander_send_ok,
        victim_recovered_send_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_hooks_are_free_and_recovery_is_scoped() {
        let report = abl_faults();

        // Armed or not, the virtual cost is identical — the hooks charge
        // nothing, so the Fig. 4 anchor survives the subsystem exactly.
        assert_eq!(report.latency_disarmed, SimDuration::from_micros(382));
        assert_eq!(report.latency_armed, report.latency_disarmed);

        // A send crosses a handful of hooks; their wall cost is far under
        // the 1% budget (each fire is a single OnceLock fast-path load —
        // the 200 ns/fire ceiling is generous for a loaded CI runner).
        assert!(report.crossings_per_send >= 1, "{report:?}");
        assert!(report.crossings_per_send < 64, "{report:?}");
        assert!(report.disarmed_ns_per_fire < 200.0, "{report:?}");
        assert!(report.hook_overhead_pct < 1.0, "{report:?}");

        // Recovery takes virtual time (the board reset) and touches only
        // the VM on the failed card.
        assert!(!report.reset_recovery.is_zero());
        assert_eq!(report.victim_quarantined, 1, "{report:?}");
        assert_eq!(report.bystander_quarantined, 0, "{report:?}");
        assert!(report.bystander_send_ok);
        assert!(report.victim_recovered_send_ok);
    }
}

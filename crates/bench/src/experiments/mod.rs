//! The per-figure experiment modules.

pub mod abl_cache;
pub mod ablations;
pub mod breakdown;
pub mod dgemm;
pub mod faults;
pub mod fig4;
pub mod fig5;
pub mod mq_scale;
pub mod open_loop;
pub mod sharing;
pub mod trace_breakdown;
pub mod zero_copy;

pub use abl_cache::{abl_cache, abl_cache_sizes, AblCacheReport, AblCacheRow};
pub use ablations::{abl_block, abl_chunk, abl_wait, BlockRow, ChunkRow, WaitRow};
pub use breakdown::{breakdown_one_byte, BreakdownRow};
pub use dgemm::{dgemm_figure, DgemmRow, PAPER_THREAD_COUNTS};
pub use faults::{abl_faults, FaultsReport};
pub use fig4::{fig4_latency, Fig4Row};
pub use fig5::{fig5_throughput, Fig5Row};
pub use mq_scale::{mq_scale, MqScaleReport, MqScaleRow, MQ_QUEUE_COUNTS, MQ_VM_COUNTS};
pub use open_loop::{
    open_loop, DoorbellLedger, OpenLoopReport, OpenLoopRow, OPEN_LOOP_BATCH, OPEN_LOOP_RATES,
    OPEN_LOOP_VMS,
};
pub use sharing::{sharing_scaling, ShareRow};
pub use trace_breakdown::{trace_breakdown, TraceBreakdownReport, TraceStageRow};
pub use zero_copy::{zero_copy, ZeroCopyReport, ZeroCopyRow};

//! **Figures 6, 7, 8** — launch + execution of the MKL dgemm sample via
//! micnativeloadex, host vs VM, for 56 / 112 / 224 threads.
//!
//! X axis: "the total size of the two input arrays"; Y axis: normalized
//! total time (host = 1.0 per size).  The paper's conclusion — "for larger
//! experiments … the virtualization cost of vPHI is amortized and the
//! relative overhead … is negligible; … as the size of transferred data
//! decreases, vPHI's virtualization overhead has a greater impact".

use std::sync::Arc;

use vphi::builder::{VmConfig, VphiHost};
use vphi_coi::transport::CoiEnv;
use vphi_coi::{CoiDaemon, GuestEnv, NativeEnv};
use vphi_mic_tools::{micnativeloadex, MicBinary};
use vphi_sim_core::SimDuration;

/// The paper's three thread counts (1, 2, 4 threads per usable core on
/// the 3120P).
pub const PAPER_THREAD_COUNTS: [u32; 3] = [56, 112, 224];

/// One x-axis point of a dgemm figure.
#[derive(Debug, Clone, PartialEq)]
pub struct DgemmRow {
    pub n: u64,
    /// 2·N²·8 — the paper's x-axis value.
    pub input_bytes: u64,
    pub host_total: SimDuration,
    pub vphi_total: SimDuration,
    /// On-card execution time (identical in both environments).
    pub device_time: SimDuration,
}

impl DgemmRow {
    /// vPHI total normalized to host (host = 1.0).
    pub fn normalized(&self) -> f64 {
        self.vphi_total.as_nanos() as f64 / self.host_total.as_nanos() as f64
    }
}

/// The matrix orders the figures sweep (inputs from 4 MiB to 1 GiB).
pub fn dgemm_sizes() -> Vec<u64> {
    vec![512, 1024, 2048, 4096, 8192]
}

/// Regenerate one of Figures 6–8 for the given thread count.
pub fn dgemm_figure(threads: u32, sizes: &[u64]) -> Vec<DgemmRow> {
    let host = VphiHost::new(1);
    let daemon = CoiDaemon::spawn(&host, 0).expect("daemon");
    let native: Arc<dyn CoiEnv> = Arc::new(NativeEnv::new(&host));
    let vm = host.spawn_vm(VmConfig::default());
    let guest: Arc<dyn CoiEnv> = Arc::new(GuestEnv::new(&vm));

    let mut rows = Vec::new();
    for &n in sizes {
        let binary = MicBinary::dgemm_sample(n);
        let host_report = micnativeloadex(&native, 0, &binary, threads).expect("native loadex");
        let vm_report = micnativeloadex(&guest, 0, &binary, threads).expect("vm loadex");
        assert_eq!(
            host_report.device_time, vm_report.device_time,
            "on-device time must be environment-independent"
        );
        rows.push(DgemmRow {
            n,
            input_bytes: binary.workload.input_bytes(),
            host_total: host_report.total_time,
            vphi_total: vm_report.total_time,
            device_time: host_report.device_time,
        });
    }

    vm.shutdown();
    daemon.shutdown();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_amortizes_with_input_size() {
        let rows = dgemm_figure(112, &dgemm_sizes());
        assert_eq!(rows.len(), 5);
        // vPHI is never faster than host.
        for r in &rows {
            assert!(r.normalized() >= 1.0, "n={}: {}", r.n, r.normalized());
        }
        // The relative overhead shrinks as N grows (the paper's headline).
        let small = rows.first().unwrap().normalized();
        let large = rows.last().unwrap().normalized();
        assert!(
            small > large + 0.05,
            "expected amortization: small-N ratio {small}, large-N ratio {large}"
        );
        // At the largest size the overhead is negligible (<5%).
        assert!(large < 1.05, "large-N ratio = {large}");
        // Execution time dominates at large N (order of seconds).
        assert!(rows.last().unwrap().device_time > SimDuration::from_millis(500));
    }

    #[test]
    fn more_threads_run_faster_on_device() {
        let sizes = [2048u64];
        let t56 = dgemm_figure(56, &sizes)[0].device_time;
        let t112 = dgemm_figure(112, &sizes)[0].device_time;
        let t224 = dgemm_figure(224, &sizes)[0].device_time;
        assert!(t56 > t112, "56 threads should be slowest");
        assert!(t112 > t224, "224 threads should be fastest");
    }
}

//! **TRACE-BREAKDOWN** — decompose the Fig. 5 virtualized-vs-native gap
//! by pipeline stage, using the end-to-end request tracer.
//!
//! Fig. 5 shows *that* vPHI remote reads reach only 72% of native
//! throughput; this experiment shows *where* the other 28% goes.  With
//! tracing armed, every guest `vreadfrom` produces a per-stage
//! decomposition (guest syscall / virtio ring / backend replay / host
//! SCIF / DMA / completion) whose sum reconciles with the end-to-end
//! virtual latency exactly — every `Timeline` charge carries a
//! [`SpanLabel`](vphi_sim_core::SpanLabel) and [`Stage::of`] is
//! exhaustive over them.
//!
//! The experiment also pins the tracer's own budget: a *disarmed* probe
//! (the production state) is one `OnceLock` fast-path load plus a branch
//! on `None`, and the probes a 1-byte send crosses must cost under 1% of
//! the send's wall time.  The 1-byte virtual latency itself must stay at
//! the Fig. 4 anchor (382 µs) with tracing armed — spans observe the
//! timeline, they never charge it.

use std::time::Instant;

use vphi::builder::{VmConfig, VphiHost, VphiVm};
use vphi_scif::{Port, RmaFlags, ScifAddr};
use vphi_sim_core::units::MIB;
use vphi_sim_core::{SimDuration, Timeline};
use vphi_trace::{HistRow, OpCtx, Stage, TraceConfig, TraceCtx, TraceHook, STAGE_COUNT};

use crate::fig5::fig5_sizes;
use crate::support::{
    spawn_device_sink_on, spawn_device_window, wait_for_guest_window, wait_for_native_window,
};

/// Calls per disarmed-probe microbenchmark loop.
const PROBE_LOOPS: u64 = 2_000_000;
/// 1-byte sends timed for the wall-clock overhead estimate.
const SEND_SAMPLES: u32 = 256;

/// One payload size of the sweep: native total vs the traced vPHI
/// per-stage decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStageRow {
    pub bytes: u64,
    /// End-to-end virtual latency of the native `vreadfrom`.
    pub native: SimDuration,
    /// End-to-end virtual latency of the guest `vreadfrom` (trace root).
    pub vphi: SimDuration,
    /// Per-stage sums, indexed by [`Stage::index`].
    pub stages: [SimDuration; STAGE_COUNT],
}

impl TraceStageRow {
    /// Sum of the stage decomposition; must reconcile with `vphi`.
    pub fn stage_sum(&self) -> SimDuration {
        self.stages.iter().copied().sum()
    }

    /// |stage_sum − vphi| as a percentage of the end-to-end latency.
    pub fn reconcile_err_pct(&self) -> f64 {
        let total = self.vphi.as_nanos() as f64;
        let sum = self.stage_sum().as_nanos() as f64;
        if total == 0.0 {
            0.0
        } else {
            100.0 * (sum - total).abs() / total
        }
    }

    /// The virtualization gap this row decomposes, in nanoseconds.
    pub fn gap_ns(&self) -> u64 {
        self.vphi.as_nanos().saturating_sub(self.native.as_nanos())
    }
}

/// The experiment result (`BENCH_trace.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceBreakdownReport {
    /// Virtual latency of the traced 1-byte send (the Fig. 4 anchor).
    pub anchor_total: SimDuration,
    /// Its per-stage decomposition, indexed by [`Stage::index`].
    pub anchor_stages: [SimDuration; STAGE_COUNT],
    /// The Fig. 5 payload sweep, decomposed per stage.
    pub rows: Vec<TraceStageRow>,
    /// Per-stage latency histograms accumulated over the sweep.
    pub hist: Vec<HistRow>,
    /// Child spans one traced 1-byte send records.
    pub spans_per_send: u64,
    /// Trace roots one traced 1-byte send starts (1: nested adoptions
    /// self-disarm, so the outermost guest op owns the trace).
    pub roots_per_send: u64,
    /// Wall ns per *disarmed* probe site (hook load + span branch).
    pub disarmed_probe_ns: f64,
    /// Mean wall ns of a 1-byte guest send with tracing disarmed.
    pub send_wall_ns: f64,
    /// Disarmed probes' share of the send wall time, in percent.
    pub trace_overhead_pct: f64,
}

/// Time one disarmed probe site: the `TraceHook` fast-path load an
/// `adopt_root` performs, plus a begin/end pair on an untraced context
/// (each a branch on `None`).  This is what every production call path
/// pays when nobody armed the tracer.
fn ns_per_disarmed_probe() -> f64 {
    let hook = TraceHook::new();
    let mut tl = Timeline::new();
    let mut ctx = OpCtx::new(&mut tl, TraceCtx::default());
    // One warmup pass keeps the first-touch cost out of the measurement.
    for _ in 0..PROBE_LOOPS / 10 {
        std::hint::black_box(hook.get());
        let span = ctx.begin(std::hint::black_box("probe"), Stage::GuestSyscall);
        ctx.end(span);
    }
    let start = Instant::now();
    for _ in 0..PROBE_LOOPS {
        std::hint::black_box(hook.get());
        let span = ctx.begin(std::hint::black_box("probe"), Stage::GuestSyscall);
        ctx.end(span);
    }
    start.elapsed().as_nanos() as f64 / PROBE_LOOPS as f64
}

/// One connected 1-byte sender with tracing disarmed; returns the mean
/// wall ns per send (the denominator of the overhead budget).
fn one_byte_wall_ns(host: &VphiHost, port: Port) -> (f64, VphiVm) {
    let sink = spawn_device_sink_on(host, 0, port);
    let vm = host.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let guest = vm.open_scif(&mut tl).expect("open");
    guest.connect(ScifAddr::new(host.device_node(0), port), &mut tl).expect("connect");

    let mut first_tl = Timeline::new();
    guest.send(&[0x5A], &mut first_tl).expect("send");
    let start = Instant::now();
    for _ in 0..SEND_SAMPLES {
        let mut tl = Timeline::new();
        guest.send(&[0x5A], &mut tl).expect("send");
    }
    let wall_ns = start.elapsed().as_nanos() as f64 / f64::from(SEND_SAMPLES);

    let mut tlc = Timeline::new();
    let _ = guest.close(&mut tlc);
    let _ = sink.join();
    (wall_ns, vm)
}

/// Run the experiment.
pub fn trace_breakdown() -> TraceBreakdownReport {
    // --- Disarmed probe microbenchmark (the production fast path). ---
    let disarmed_probe_ns = ns_per_disarmed_probe();

    // --- Baseline: 1-byte send wall time with tracing disarmed. ---
    let host_plain = VphiHost::new(1);
    let (send_wall_ns, vm_plain) = one_byte_wall_ns(&host_plain, Port(870));
    vm_plain.shutdown();

    // --- Armed anchor run: same send, tracer on, count the probes. ---
    let host = VphiHost::new(1);
    let tracer = host.arm_tracing(TraceConfig::default());
    let sink = spawn_device_sink_on(&host, 0, Port(871));
    let vm = host.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let guest = vm.open_scif(&mut tl).expect("open");
    guest.connect(ScifAddr::new(host.device_node(0), Port(871)), &mut tl).expect("connect");
    let mut anchor_tl = Timeline::new();
    guest.send(&[0x5A], &mut anchor_tl).expect("send");

    let before = tracer.counters();
    for _ in 0..SEND_SAMPLES {
        let mut tl = Timeline::new();
        guest.send(&[0x5A], &mut tl).expect("send");
    }
    let after = tracer.counters();
    let spans_per_send = (after.spans_recorded - before.spans_recorded) / u64::from(SEND_SAMPLES);
    let roots_per_send = (after.traces_started - before.traces_started) / u64::from(SEND_SAMPLES);

    let vm_id = vm.vm().id();
    let anchor = tracer
        .summaries(vm_id)
        .into_iter()
        .rev()
        .find(|s| s.op == "send")
        .expect("traced send summary");
    let anchor_total = anchor.total;
    let anchor_stages = anchor.stages;

    let mut tlc = Timeline::new();
    let _ = guest.close(&mut tlc);
    vm.shutdown();
    let _ = sink.join();

    // Every recorded span is one begin/end probe site crossed; every root
    // is one hook load.  Cost them all at the (conservative) disarmed
    // probe price to get the production overhead of leaving the probes
    // compiled in.
    let probes_per_send = spans_per_send + roots_per_send;
    let trace_overhead_pct = 100.0 * (probes_per_send as f64 * disarmed_probe_ns) / send_wall_ns;

    // --- The Fig. 5 sweep, traced: decompose the gap per stage. ---
    let host2 = VphiHost::new(1);
    let tracer2 = host2.arm_tracing(TraceConfig::default());
    let max = *fig5_sizes().last().expect("nonempty sizes");

    let server = spawn_device_window(&host2, Port(872), max);
    let native = host2.native_endpoint().expect("native endpoint");
    let mut tl = Timeline::new();
    native.connect(ScifAddr::new(host2.device_node(0), Port(872)), &mut tl).expect("connect");
    wait_for_native_window(&native);

    let server2 = spawn_device_window(&host2, Port(873), max);
    let vm2 = host2.spawn_vm(VmConfig::builder().mem_size(max + 64 * MIB).build());
    let guest2 = vm2.open_scif(&mut tl).expect("guest open");
    guest2.connect(ScifAddr::new(host2.device_node(0), Port(873)), &mut tl).expect("guest connect");
    wait_for_guest_window(&guest2, &vm2);
    let vm2_id = vm2.vm().id();

    let mut rows = Vec::new();
    let mut native_buf = vec![0u8; max as usize];
    for bytes in fig5_sizes() {
        let mut host_tl = Timeline::new();
        native
            .vreadfrom(&mut native_buf[..bytes as usize], 0, RmaFlags::SYNC, &mut host_tl)
            .expect("native vread");

        let gbuf = vm2.alloc_buf(bytes).expect("guest buf");
        let mut vphi_tl = Timeline::new();
        guest2.vreadfrom(&gbuf, 0, RmaFlags::SYNC, &mut vphi_tl).expect("vphi vread");
        drop(gbuf);

        let summary = tracer2.last_summary(vm2_id).expect("traced vread summary");
        assert_eq!(summary.op, "vreadfrom", "unexpected last trace: {}", summary.op);
        assert_eq!(summary.total, vphi_tl.total(), "trace root != end-to-end timeline");
        rows.push(TraceStageRow {
            bytes,
            native: host_tl.total(),
            vphi: summary.total,
            stages: summary.stages,
        });
    }
    let hist = tracer2.hist_rows();

    native.close();
    let mut tl_close = Timeline::new();
    let _ = guest2.close(&mut tl_close);
    vm2.shutdown();
    let _ = server.join();
    let _ = server2.join();

    TraceBreakdownReport {
        anchor_total,
        anchor_stages,
        rows,
        hist,
        spans_per_send,
        roots_per_send,
        disarmed_probe_ns,
        send_wall_ns,
        trace_overhead_pct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_sums_reconcile_and_disarmed_probes_are_free() {
        let report = trace_breakdown();

        // Tracing observes, it never charges: the 1-byte anchor survives
        // an armed tracer exactly, and its stages account for all of it.
        assert_eq!(report.anchor_total, SimDuration::from_micros(382), "{report:?}");
        assert_eq!(
            report.anchor_stages.iter().copied().sum::<SimDuration>(),
            report.anchor_total,
            "{report:?}"
        );
        // The dominant anchor stage is completion (the paper attributes
        // 93% of the 1-byte overhead to the waiting scheme).
        let completion = report.anchor_stages[Stage::Completion.index()];
        assert!(
            completion.as_nanos() * 2 > report.anchor_total.as_nanos(),
            "completion {completion} of {}",
            report.anchor_total
        );

        // The sweep covers the Fig. 5 sizes and reconciles within the 1%
        // budget (exactly, by construction) at every point.
        assert_eq!(report.rows.len(), fig5_sizes().len());
        for row in &report.rows {
            assert!(row.reconcile_err_pct() < 1.0, "{row:?}");
            assert_eq!(row.stage_sum(), row.vphi, "{row:?}");
            assert!(row.vphi > row.native, "{row:?}");
            // Large transfers are DMA-dominated on both sides; the gap
            // itself lives in the virtualization stages.
            let dma = row.stages[Stage::Dma.index()];
            assert!(!dma.is_zero(), "{row:?}");
        }

        // Histograms exist for the swept op and carry stage rows.
        assert!(report.hist.iter().any(|h| h.op == "vreadfrom" && h.stage.is_none()));
        assert!(report.hist.iter().any(|h| h.op == "vreadfrom" && h.stage.is_some()));

        // A send crosses a bounded set of probe sites, each a single
        // fast-path load when disarmed — far under the 1% budget.
        assert_eq!(report.roots_per_send, 1, "{report:?}");
        assert!(report.spans_per_send >= 4, "{report:?}");
        assert!(report.spans_per_send < 64, "{report:?}");
        assert!(report.disarmed_probe_ns < 200.0, "{report:?}");
        // The <1% budget is a property of the optimized build (the CI
        // trace-breakdown figure asserts it); an unoptimized probe costs
        // ~25x more and sits right at the line, so don't pin it in debug.
        if !cfg!(debug_assertions) {
            assert!(report.trace_overhead_pct < 1.0, "{report:?}");
        }
    }
}

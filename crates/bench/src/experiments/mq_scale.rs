//! **MQ-SCALE** — multi-queue transport scaling.
//!
//! The tentpole experiment for the sharded transport: what does adding
//! virtqueue lanes buy when several VMs hammer the card at once?  Three
//! measurements, one report:
//!
//! 1. **Aggregate throughput vs queue count × VM count.**  Hybrid method
//!    (same idea as SHARE): the per-request path is measured once on the
//!    real stack, the request→lane assignment is replayed through the real
//!    queue router, and link queueing is computed on the real link
//!    resource.  Each VM's backend serializes its lane's requests on that
//!    lane's shard thread, so the backend makespan is the busiest lane's
//!    load; the PCIe link caps everything from below.
//! 2. **Single-queue anchor.**  `num_queues = 1` must reproduce the
//!    seed's Fig. 4 numbers byte-for-byte (382 µs for a 1-byte send) —
//!    and because virtual time is queue-count-independent, so must the
//!    default 4-queue config.
//! 3. **Pipelined DMA.**  A ≥ 64 MiB cold-path remote read with
//!    `pipeline_rma` on must beat monolithic staging by ≥ 20%.

use vphi::backend::RegCacheConfig;
use vphi::builder::{VmConfig, VphiHost};
use vphi::frontend::VphiChannel;
use vphi::protocol::VphiRequest;
use vphi_scif::{Port, RmaFlags, ScifAddr};
use vphi_sim_core::units::{KIB, MIB};
use vphi_sim_core::{SimDuration, SimTime, SpanLabel, Timeline};

use crate::support::{spawn_device_sink, spawn_device_window, wait_for_guest_window};

/// The queue-count axis of the figure.
pub const MQ_QUEUE_COUNTS: &[u16] = &[1, 2, 4];
/// The VM-count axis of the figure.
pub const MQ_VM_COUNTS: &[usize] = &[1, 2, 4];

/// Endpoints per VM.  Enough keys that the endpoint hash spreads them
/// over the lanes; the assignment is deterministic (sequential epds).
const ENDPOINTS_PER_VM: u64 = 64;
/// Closed-loop requests issued per endpoint.
const REQUESTS_PER_ENDPOINT: u64 = 16;
/// Payload per request — small enough that the shard service time, not
/// the link, is the single-queue bottleneck (the regime MQ targets).
const REQUEST_BYTES: u64 = 4 * KIB;
/// The pipelined-DMA probe size (acceptance: ≥ 64 MiB, ≥ 20% faster).
const RMA_BYTES: u64 = 64 * MIB;

/// Timeline labels charged on the guest's vCPU — they pipeline across
/// requests and across VMs, so only one "fill" of them bounds the
/// makespan.  Everything else is shard service time.
const GUEST_SIDE: &[SpanLabel] = &[
    SpanLabel::GuestSyscall,
    SpanLabel::GuestKmalloc,
    SpanLabel::GuestCopy,
    SpanLabel::RingPush,
    SpanLabel::VmExitKick,
    SpanLabel::GuestWakeup,
    SpanLabel::PollWait,
];

/// One (queue count, VM count) grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct MqScaleRow {
    pub queues: u16,
    pub vms: usize,
    /// Total requests across all VMs.
    pub requests: u64,
    pub bytes_each: u64,
    /// Fraction of one VM's requests landing on its busiest lane (1.0
    /// with a single queue; the hash-balance quality with more).
    pub busiest_lane_share: f64,
    /// Completion time of the whole closed-loop run.
    pub makespan: SimDuration,
    /// Total bytes / makespan.
    pub aggregate_bw: f64,
}

/// The full MQ-SCALE report: the scaling grid plus both acceptance
/// anchors (single-queue byte-identity, pipelined-DMA win).
#[derive(Debug, Clone, PartialEq)]
pub struct MqScaleReport {
    pub rows: Vec<MqScaleRow>,
    /// 1-byte send latency with the default (4-queue) config.
    pub anchor_default: SimDuration,
    /// 1-byte send latency with `num_queues = 1` — the seed's 382 µs.
    pub anchor_single_queue: SimDuration,
    pub rma_bytes: u64,
    /// Cold-path 64 MiB remote read, monolithic staging.
    pub rma_monolithic: SimDuration,
    /// Same read with double-buffered DMA pipelining.
    pub rma_pipelined: SimDuration,
}

impl MqScaleReport {
    pub fn row(&self, queues: u16, vms: usize) -> &MqScaleRow {
        self.rows.iter().find(|r| r.queues == queues && r.vms == vms).expect("grid point missing")
    }

    /// Aggregate-throughput speedup of 4 queues over 1 at 4 VMs (the
    /// headline number; acceptance floor 2.5×).
    pub fn mq_speedup(&self) -> f64 {
        self.row(4, 4).aggregate_bw / self.row(1, 4).aggregate_bw
    }

    /// Wall-time improvement of pipelined over monolithic staging
    /// (acceptance floor 20%).
    pub fn rma_improvement_pct(&self) -> f64 {
        100.0 * self.rma_monolithic.saturating_sub(self.rma_pipelined).as_nanos() as f64
            / self.rma_monolithic.as_nanos().max(1) as f64
    }
}

/// Regenerate the MQ-SCALE report.
pub fn mq_scale() -> MqScaleReport {
    let (svc, fill) = measure_request(REQUEST_BYTES);

    // One host supplies the real link resource for the queueing model.
    let host = VphiHost::new(1);
    let link = host.board(0).link();

    let mut rows = Vec::new();
    for &q in MQ_QUEUE_COUNTS {
        // The real router: lane = hash(epd) % q, exactly what the
        // frontend does per request.
        let router = VphiChannel::with_queues(8, q);
        for &n in MQ_VM_COUNTS {
            // Each VM's endpoints, hashed onto that VM's lanes.
            let mut busiest = 0u64;
            for vm in 0..n as u64 {
                let mut lane_reqs = vec![0u64; q as usize];
                for e in 0..ENDPOINTS_PER_VM {
                    let epd = vm * ENDPOINTS_PER_VM + e + 1;
                    let lane = router.route(&VphiRequest::Send { epd, len: REQUEST_BYTES as u32 });
                    lane_reqs[lane] += REQUESTS_PER_ENDPOINT;
                }
                busiest = busiest.max(*lane_reqs.iter().max().expect("lanes"));
            }
            let per_vm_reqs = ENDPOINTS_PER_VM * REQUESTS_PER_ENDPOINT;
            let total_reqs = per_vm_reqs * n as u64;

            // Busiest shard thread serializes its lane's service time;
            // the shards of different lanes (and different VMs) overlap.
            let backend_makespan = svc * busiest;

            // All requests' wire traffic shares the one PCIe link.
            link.reset_accounting();
            let t0 = SimTime::ZERO;
            let mut link_makespan = SimDuration::ZERO;
            let mut link_tl = Timeline::new();
            for _ in 0..total_reqs {
                let end = link.transmit_from(t0, REQUEST_BYTES, &mut link_tl);
                link_makespan = link_makespan.max(end.elapsed_since(t0));
            }

            let makespan = backend_makespan.max(link_makespan) + fill;
            rows.push(MqScaleRow {
                queues: q,
                vms: n,
                requests: total_reqs,
                bytes_each: REQUEST_BYTES,
                busiest_lane_share: busiest as f64 / per_vm_reqs as f64,
                makespan,
                aggregate_bw: (total_reqs * REQUEST_BYTES) as f64 / makespan.as_secs_f64(),
            });
        }
    }

    MqScaleReport {
        rows,
        anchor_default: one_byte_latency(VmConfig::default(), Port(880)),
        anchor_single_queue: one_byte_latency(VmConfig::builder().num_queues(1).build(), Port(881)),
        rma_bytes: RMA_BYTES,
        rma_monolithic: rma_cold_read(false, Port(882)),
        rma_pipelined: rma_cold_read(true, Port(883)),
    }
}

/// Measure one request on the real stack and split it into (shard
/// service time, guest-side fill).
fn measure_request(bytes: u64) -> (SimDuration, SimDuration) {
    let host = VphiHost::new(1);
    let sink = spawn_device_sink(&host, Port(879));
    let vm = host.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let guest = vm.open_scif(&mut tl).expect("open");
    guest.connect(ScifAddr::new(host.device_node(0), Port(879)), &mut tl).expect("connect");
    let data = vec![0x5Au8; bytes as usize];
    let mut send_tl = Timeline::new();
    guest.send(&data, &mut send_tl).expect("send");
    let fill: SimDuration = GUEST_SIDE.iter().map(|&l| send_tl.total_for(l)).sum();
    let svc = send_tl.total().saturating_sub(fill);
    let mut tl_close = Timeline::new();
    let _ = guest.close(&mut tl_close);
    vm.shutdown();
    let _ = sink.join();
    (svc, fill)
}

/// Fig. 4's anchor measurement under an arbitrary VM config.
fn one_byte_latency(config: VmConfig, port: Port) -> SimDuration {
    let host = VphiHost::new(1);
    let sink = spawn_device_sink(&host, port);
    let vm = host.spawn_vm(config);
    let mut tl = Timeline::new();
    let guest = vm.open_scif(&mut tl).expect("open");
    guest.connect(ScifAddr::new(host.device_node(0), port), &mut tl).expect("connect");
    let mut send_tl = Timeline::new();
    guest.send(&[0x5A], &mut send_tl).expect("send");
    let latency = send_tl.total();
    let mut tl_close = Timeline::new();
    let _ = guest.close(&mut tl_close);
    vm.shutdown();
    let _ = sink.join();
    latency
}

/// One cold-path remote read of [`RMA_BYTES`] with the registration
/// cache disabled (every read pays the translate charge, which is where
/// pipelining overlaps staging with device DMA).
fn rma_cold_read(pipeline: bool, port: Port) -> SimDuration {
    let host = VphiHost::new(1);
    let server = spawn_device_window(&host, port, RMA_BYTES);
    let vm = host.spawn_vm(
        VmConfig::builder()
            .mem_size(RMA_BYTES + 64 * MIB)
            .reg_cache(RegCacheConfig::disabled())
            .pipeline_rma(pipeline)
            .build(),
    );
    let mut tl = Timeline::new();
    let guest = vm.open_scif(&mut tl).expect("open");
    guest.connect(ScifAddr::new(host.device_node(0), port), &mut tl).expect("connect");
    wait_for_guest_window(&guest, &vm);
    let gbuf = vm.alloc_buf(RMA_BYTES).expect("buf");
    let mut read_tl = Timeline::new();
    guest.vreadfrom(&gbuf, 0, RmaFlags::SYNC, &mut read_tl).expect("vread");
    let total = read_tl.total();
    drop(gbuf);
    let mut tl_close = Timeline::new();
    let _ = guest.close(&mut tl_close);
    vm.shutdown();
    let _ = server.join();
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mq_scale_meets_the_acceptance_floors() {
        let report = mq_scale();
        // 4 queues at 4 VMs: ≥ 2.5× the 1-queue aggregate.
        assert!(
            report.mq_speedup() >= 2.5,
            "4q/1q speedup = {:.2} (busiest lane share {:.2})",
            report.mq_speedup(),
            report.row(4, 4).busiest_lane_share
        );
        // The 1-queue config reproduces the seed's Fig. 4 anchor
        // byte-for-byte — and the 4-queue default matches it (virtual
        // time is queue-count-independent).
        assert_eq!(report.anchor_single_queue, SimDuration::from_micros(382));
        assert_eq!(report.anchor_default, report.anchor_single_queue);
        // Pipelined DMA beats monolithic staging by ≥ 20% at 64 MiB.
        assert!(report.rma_bytes >= 64 * MIB);
        assert!(
            report.rma_improvement_pct() >= 20.0,
            "pipelined RMA improvement = {:.1}% ({} → {})",
            report.rma_improvement_pct(),
            report.rma_monolithic,
            report.rma_pipelined
        );
    }

    #[test]
    fn mq_scaling_is_monotone_and_link_capped() {
        let report = mq_scale();
        for &n in MQ_VM_COUNTS {
            // More queues never hurt aggregate throughput.
            let bws: Vec<f64> =
                MQ_QUEUE_COUNTS.iter().map(|&q| report.row(q, n).aggregate_bw).collect();
            for pair in bws.windows(2) {
                assert!(pair[1] >= pair[0] * 0.999, "throughput regressed: {bws:?}");
            }
        }
        // One queue serializes everything on the single shard: the
        // busiest lane holds every request.
        for &n in MQ_VM_COUNTS {
            assert_eq!(report.row(1, n).busiest_lane_share, 1.0);
        }
        // Nothing exceeds the 6.4 GB/s link.
        for r in &report.rows {
            assert!(r.aggregate_bw <= 6.45e9, "aggregate {} exceeds link", r.aggregate_bw);
        }
    }

    #[test]
    fn mq_scale_is_bit_reproducible() {
        let a = mq_scale();
        let b = mq_scale();
        assert_eq!(a, b, "MQ-SCALE differed across runs");
    }
}

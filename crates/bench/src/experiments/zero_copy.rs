//! **ZERO-COPY** — zero-copy large-RMA vs the staged seed path, cache-cold.
//!
//! ABL-CACHE showed the *warm* registration cache closing the Fig. 5 gap,
//! but a cold cache still pays the full per-request translation plus the
//! staging bounce.  The zero-copy redesign (DESIGN.md #19) maps the guest
//! window straight into the device aperture and gathers DMA over it, so
//! even a cache-cold large read pays one huge-page pin sweep plus a
//! scatter-gather build instead of the per-page replay.  This experiment
//! sweeps the ABL-CACHE sizes four ways —
//!
//! * native (host process, no virtualization),
//! * vPHI zero-copy **off**, cache disabled (the seed / Fig. 5 charging),
//! * vPHI zero-copy **on**, cache disabled (every read pins cold),
//! * vPHI zero-copy **on**, cache warm (second read of the same buffer),
//!
//! and pins the invariants: below `KMALLOC_MAX_SIZE` the feature is inert
//! (byte-identical bandwidth to the staged path), above it the cold curve
//! reaches ≥95% of native at 256 MiB, and the 1-byte Fig. 4 anchor is
//! byte-identical with the feature on and off.  The traced 256 MiB read
//! shows the shift: the `dma-map` stage appears only on the zero-copy VM,
//! and `backend-replay` shrinks by what staging used to charge.

use vphi::backend::RegCacheConfig;
use vphi::builder::{VmConfig, VphiHost};
use vphi::debugfs::VphiDebugReport;
use vphi_scif::{Port, RmaFlags, ScifAddr};
use vphi_sim_core::units::MIB;
use vphi_sim_core::{SimDuration, Timeline};
use vphi_trace::{TraceConfig, STAGE_COUNT};

use crate::abl_cache::abl_cache_sizes;
use crate::support::{
    spawn_device_sink_on, spawn_device_window, wait_for_guest_window, wait_for_native_window,
};

/// One x-axis point (bandwidths in bytes/s of virtual time).
#[derive(Debug, Clone, PartialEq)]
pub struct ZeroCopyRow {
    pub bytes: u64,
    pub native_bw: f64,
    /// Zero-copy off, cache disabled: the seed / Fig. 5 charging.
    pub off_bw: f64,
    /// Zero-copy on, cache disabled: every read pins its window cold.
    pub zc_cold_bw: f64,
    /// Zero-copy on, cache warm: second read of the same buffer.
    pub zc_warm_bw: f64,
}

impl ZeroCopyRow {
    pub fn off_ratio(&self) -> f64 {
        self.off_bw / self.native_bw
    }

    pub fn zc_cold_ratio(&self) -> f64 {
        self.zc_cold_bw / self.native_bw
    }

    pub fn zc_warm_ratio(&self) -> f64 {
        self.zc_warm_bw / self.native_bw
    }
}

/// The experiment result (`BENCH_zc.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct ZeroCopyReport {
    pub rows: Vec<ZeroCopyRow>,
    /// 1-byte send latency with zero-copy off (the Fig. 4 anchor).
    pub anchor_off: SimDuration,
    /// The same anchor with zero-copy on: must be byte-identical.
    pub anchor_zc: SimDuration,
    /// Traced 256 MiB read, zero-copy off, per-stage (by `Stage::index`).
    pub peak_stages_off: [SimDuration; STAGE_COUNT],
    /// Traced 256 MiB read, zero-copy on cold, per-stage.
    pub peak_stages_zc: [SimDuration; STAGE_COUNT],
    /// Zero-copy counters summed over the cold and warm zero-copy VMs.
    pub windows_mapped: u64,
    pub map_hits: u64,
    pub sg_descriptors: u64,
    pub staging_bytes_avoided: u64,
    /// The feature-off VM must never touch the zero-copy path.
    pub off_staging_bytes_avoided: u64,
    /// Aperture audit after every guest closed: both must be zero.
    pub mapped_after_close: u64,
    pub inflight_after_close: u64,
}

/// 1-byte blocking send against a sink: the Fig. 4 anchor for `config`.
fn one_byte_anchor(host: &VphiHost, port: Port, config: VmConfig) -> SimDuration {
    let sink = spawn_device_sink_on(host, 0, port);
    let vm = host.spawn_vm(config);
    let mut tl = Timeline::new();
    let guest = vm.open_scif(&mut tl).expect("anchor open");
    guest.connect(ScifAddr::new(host.device_node(0), port), &mut tl).expect("anchor connect");
    let mut send_tl = Timeline::new();
    guest.send(&[0x5A], &mut send_tl).expect("anchor send");
    let mut tlc = Timeline::new();
    let _ = guest.close(&mut tlc);
    vm.shutdown();
    let _ = sink.join();
    send_tl.total()
}

/// Run the experiment.
pub fn zero_copy() -> ZeroCopyReport {
    let host = VphiHost::new(1);
    let tracer = host.arm_tracing(TraceConfig::default());
    let max = *abl_cache_sizes().last().expect("nonempty sizes");

    // --- The Fig. 4 anchor, feature off and on (must be identical). ---
    let anchor_off = one_byte_anchor(&host, Port(880), VmConfig::default());
    let anchor_zc =
        one_byte_anchor(&host, Port(881), VmConfig::builder().zero_copy_rma(true).build());

    // --- Native client against a device window. ---
    let server = spawn_device_window(&host, Port(882), max);
    let native = host.native_endpoint().expect("native endpoint");
    let mut tl = Timeline::new();
    native.connect(ScifAddr::new(host.device_node(0), Port(882)), &mut tl).expect("connect");
    wait_for_native_window(&native);

    // --- vPHI, zero-copy off, cache disabled: the seed charging. ---
    let server_off = spawn_device_window(&host, Port(883), max);
    let vm_off = host.spawn_vm(
        VmConfig::builder().mem_size(max + 64 * MIB).reg_cache(RegCacheConfig::disabled()).build(),
    );
    let guest_off = vm_off.open_scif(&mut tl).expect("off open");
    guest_off.connect(ScifAddr::new(host.device_node(0), Port(883)), &mut tl).expect("off connect");
    wait_for_guest_window(&guest_off, &vm_off);

    // --- vPHI, zero-copy on, cache disabled: every read pins cold. ---
    let server_cold = spawn_device_window(&host, Port(884), max);
    let vm_cold = host.spawn_vm(
        VmConfig::builder()
            .mem_size(max + 64 * MIB)
            .reg_cache(RegCacheConfig::disabled())
            .zero_copy_rma(true)
            .build(),
    );
    let guest_cold = vm_cold.open_scif(&mut tl).expect("cold open");
    guest_cold
        .connect(ScifAddr::new(host.device_node(0), Port(884)), &mut tl)
        .expect("cold connect");
    wait_for_guest_window(&guest_cold, &vm_cold);

    // --- vPHI, zero-copy on, default cache: measured read is warm. ---
    let server_warm = spawn_device_window(&host, Port(885), max);
    let vm_warm =
        host.spawn_vm(VmConfig::builder().mem_size(max + 64 * MIB).zero_copy_rma(true).build());
    let guest_warm = vm_warm.open_scif(&mut tl).expect("warm open");
    guest_warm
        .connect(ScifAddr::new(host.device_node(0), Port(885)), &mut tl)
        .expect("warm connect");
    wait_for_guest_window(&guest_warm, &vm_warm);

    let mut rows = Vec::new();
    let mut peak_stages_off = [SimDuration::ZERO; STAGE_COUNT];
    let mut peak_stages_zc = [SimDuration::ZERO; STAGE_COUNT];
    let mut native_buf = vec![0u8; max as usize];
    for bytes in abl_cache_sizes() {
        let mut native_tl = Timeline::new();
        native
            .vreadfrom(&mut native_buf[..bytes as usize], 0, RmaFlags::SYNC, &mut native_tl)
            .expect("native vread");

        let gbuf_off = vm_off.alloc_buf(bytes).expect("off buf");
        let mut off_tl = Timeline::new();
        guest_off.vreadfrom(&gbuf_off, 0, RmaFlags::SYNC, &mut off_tl).expect("off vread");
        if bytes == max {
            peak_stages_off = tracer.last_summary(vm_off.vm().id()).expect("off trace").stages;
        }
        drop(gbuf_off);

        let gbuf_cold = vm_cold.alloc_buf(bytes).expect("cold buf");
        let mut cold_tl = Timeline::new();
        guest_cold.vreadfrom(&gbuf_cold, 0, RmaFlags::SYNC, &mut cold_tl).expect("cold vread");
        if bytes == max {
            peak_stages_zc = tracer.last_summary(vm_cold.vm().id()).expect("cold trace").stages;
        }
        drop(gbuf_cold);

        let gbuf_warm = vm_warm.alloc_buf(bytes).expect("warm buf");
        let mut warm_up_tl = Timeline::new();
        guest_warm
            .vreadfrom(&gbuf_warm, 0, RmaFlags::SYNC, &mut warm_up_tl)
            .expect("warming vread");
        let mut warm_tl = Timeline::new();
        guest_warm.vreadfrom(&gbuf_warm, 0, RmaFlags::SYNC, &mut warm_tl).expect("warm vread");
        drop(gbuf_warm);

        rows.push(ZeroCopyRow {
            bytes,
            native_bw: native_tl.total().throughput(bytes),
            off_bw: off_tl.total().throughput(bytes),
            zc_cold_bw: cold_tl.total().throughput(bytes),
            zc_warm_bw: warm_tl.total().throughput(bytes),
        });
    }

    let cold_report = VphiDebugReport::collect(&vm_cold);
    let warm_report = VphiDebugReport::collect(&vm_warm);
    let off_report = VphiDebugReport::collect(&vm_off);

    native.close();
    let mut tl_close = Timeline::new();
    let _ = guest_off.close(&mut tl_close);
    let _ = guest_cold.close(&mut tl_close);
    let _ = guest_warm.close(&mut tl_close);
    let mapped_after_close = vm_off.backend().inner().aperture().mapped_windows() as u64
        + vm_cold.backend().inner().aperture().mapped_windows() as u64
        + vm_warm.backend().inner().aperture().mapped_windows() as u64;
    let inflight_after_close = vm_off.backend().inner().aperture().inflight_total()
        + vm_cold.backend().inner().aperture().inflight_total()
        + vm_warm.backend().inner().aperture().inflight_total();
    vm_off.shutdown();
    vm_cold.shutdown();
    vm_warm.shutdown();
    let _ = server.join();
    let _ = server_off.join();
    let _ = server_cold.join();
    let _ = server_warm.join();

    ZeroCopyReport {
        rows,
        anchor_off,
        anchor_zc,
        peak_stages_off,
        peak_stages_zc,
        windows_mapped: cold_report.windows_mapped + warm_report.windows_mapped,
        map_hits: cold_report.map_hits + warm_report.map_hits,
        sg_descriptors: cold_report.sg_descriptors + warm_report.sg_descriptors,
        staging_bytes_avoided: cold_report.staging_bytes_avoided
            + warm_report.staging_bytes_avoided,
        off_staging_bytes_avoided: off_report.staging_bytes_avoided,
        mapped_after_close,
        inflight_after_close,
    }
}

#[cfg(test)]
mod tests {
    use vphi_sim_core::cost::KMALLOC_MAX_SIZE;
    use vphi_trace::Stage;

    use super::*;

    #[test]
    fn cold_zero_copy_reaches_native_and_stays_inert_below_the_gate() {
        let report = zero_copy();

        // The Fig. 4 anchor is byte-identical with the feature on and off:
        // 1-byte ops never reach the zero-copy arm.
        assert_eq!(report.anchor_off, SimDuration::from_micros(382), "{report:?}");
        assert_eq!(report.anchor_zc, report.anchor_off, "anchor moved: {report:?}");

        let peak = report.rows.last().unwrap();
        assert_eq!(peak.bytes, 256 * MIB);
        // Feature off reproduces the seed's 72% ceiling at 256 MiB...
        assert!((peak.off_ratio() - 0.72).abs() < 0.01, "off ratio = {}", peak.off_ratio());
        // ...while cache-cold zero-copy reaches ≥95% of native (the seed
        // managed 72% here), and warm only improves on cold.
        assert!(peak.zc_cold_ratio() >= 0.95, "zc cold ratio = {}", peak.zc_cold_ratio());
        assert!(peak.zc_warm_ratio() >= peak.zc_cold_ratio() - 1e-9, "{peak:?}");

        let mut big_sizes = 0u64;
        let mut big_bytes = 0u64;
        for row in &report.rows {
            if row.bytes <= KMALLOC_MAX_SIZE {
                // Below the gate the feature is inert: byte-identical
                // charging, so bit-identical bandwidth.
                assert_eq!(row.zc_cold_bw, row.off_bw, "gate leaked at {}", row.bytes);
            } else {
                big_sizes += 1;
                big_bytes += row.bytes;
                assert!(row.zc_cold_bw > row.off_bw, "no win at {}: {row:?}", row.bytes);
            }
        }

        // Counters: the cold VM maps every big read, the warm VM maps once
        // and hits on the measured read; nothing big was staged.
        assert!(report.windows_mapped >= 2 * big_sizes, "{report:?}");
        assert!(report.map_hits >= big_sizes, "{report:?}");
        assert!(report.sg_descriptors >= report.windows_mapped, "{report:?}");
        // Cold VM once + warm VM twice per big size.
        assert!(report.staging_bytes_avoided >= 3 * big_bytes, "{report:?}");
        // The feature-off VM never touches the zero-copy path.
        assert_eq!(report.off_staging_bytes_avoided, 0, "{report:?}");

        // The traced 256 MiB read: `dma-map` exists only on the zero-copy
        // VM, and it displaces replay time rather than adding to it.
        assert!(report.peak_stages_off[Stage::DmaMap.index()].is_zero(), "{report:?}");
        assert!(!report.peak_stages_zc[Stage::DmaMap.index()].is_zero(), "{report:?}");
        assert!(
            report.peak_stages_zc[Stage::BackendReplay.index()]
                < report.peak_stages_off[Stage::BackendReplay.index()],
            "replay did not shrink: {report:?}"
        );

        // Zero-leak audit: every mapping died with its endpoint.
        assert_eq!(report.mapped_after_close, 0, "{report:?}");
        assert_eq!(report.inflight_after_close, 0, "{report:?}");
    }
}

//! `figures` — regenerate every table and figure of the paper (plus the
//! ablations) and print them as tables of virtual-time measurements.
//!
//! ```text
//! figures                # everything
//! figures --fig 4        # just Figure 4
//! figures --fig breakdown
//! figures --fig 6|7|8|abl-wait|abl-chunk|abl-block|abl-cache|abl-faults|trace-breakdown|zero-copy|share|mq-scale|open-loop
//! ```

use vphi_bench::abl_cache::abl_cache;
use vphi_bench::ablations::{abl_block, abl_chunk, abl_wait};
use vphi_bench::breakdown::breakdown_one_byte;
use vphi_bench::dgemm::{dgemm_figure, dgemm_sizes};
use vphi_bench::faults::abl_faults;
use vphi_bench::fig4::fig4_latency;
use vphi_bench::fig5::fig5_throughput;
use vphi_bench::mq_scale::mq_scale;
use vphi_bench::open_loop::open_loop;
use vphi_bench::sharing::sharing_scaling;
use vphi_bench::support::render_table;
use vphi_bench::trace_breakdown::trace_breakdown;
use vphi_bench::zero_copy::zero_copy;
use vphi_sim_core::units::{format_bytes, format_throughput};
use vphi_trace::Stage;

fn fig4() {
    let rows = fig4_latency();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format_bytes(r.bytes),
                r.host.to_string(),
                r.vphi.to_string(),
                r.overhead().to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Fig. 4 — send-receive communication latency",
            &["size", "host", "vPHI", "overhead"],
            &table,
        )
    );
    println!("paper anchors: host 1B = 7us, vPHI 1B = 382us, constant offset ~375us\n");
}

fn breakdown() {
    let (total, overhead, rows) = breakdown_one_byte();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.label),
                r.time.to_string(),
                if r.overhead_share > 0.0 {
                    format!("{:.1}%", 100.0 * r.overhead_share)
                } else {
                    "-".to_string()
                },
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Breakdown — vPHI 1-byte send (§IV-B)",
            &["component", "time", "share of overhead"],
            &table,
        )
    );
    println!("total = {total}, virtualization overhead = {overhead}");
    println!("paper: \"93% of this overhead attributes to the waiting scheme\"\n");
}

fn fig5() {
    let rows = fig5_throughput();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format_bytes(r.bytes),
                format_throughput(r.host_bw),
                format_throughput(r.vphi_bw),
                format!("{:.1}%", 100.0 * r.ratio()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Fig. 5 — remote memory access throughput",
            &["size", "host", "vPHI", "vPHI/host"],
            &table,
        )
    );
    println!("paper anchors: host peak 6.4GB/s, vPHI 4.6GB/s (72%)\n");
}

fn dgemm_fig(threads: u32, fig_no: u32) {
    let rows = dgemm_figure(threads, &dgemm_sizes());
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                format_bytes(r.input_bytes),
                r.host_total.to_string(),
                r.vphi_total.to_string(),
                r.device_time.to_string(),
                format!("{:.3}", r.normalized()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!("Fig. {fig_no} — dgemm launch+execution, {threads} threads"),
            &["N", "inputs", "host", "vPHI", "on-device", "vPHI/host"],
            &table,
        )
    );
    println!("paper: overhead amortizes as input size grows (ratio → 1)\n");
}

fn abl_wait_fig() {
    let rows = abl_wait();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.to_string(),
                format_bytes(r.bytes),
                r.latency.to_string(),
                if r.slept { "sleep".into() } else { "spin".into() },
                format!("{} ns", r.spin_burn_ns),
                format!("{} ns", r.svc_ns),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "ABL-WAIT — waiting schemes (paper's future-work hybrid included)",
            &["scheme", "size", "latency", "vCPU", "spin burn", "service"],
            &table,
        )
    );
    println!("adaptive spins small requests below the EWMA budget, sleeps bulk at once\n");

    // Machine-readable companion for plotting scripts.
    let json = abl_wait_json(&rows);
    let path = "BENCH_wait.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Hand-rolled JSON (the build environment has no serde).
fn abl_wait_json(rows: &[vphi_bench::WaitRow]) -> String {
    let series = |f: &dyn Fn(&vphi_bench::WaitRow) -> String| -> String {
        rows.iter().map(f).collect::<Vec<_>>().join(", ")
    };
    format!(
        "{{\n  \"figure\": \"abl-wait\",\n  \"unit\": \"nanoseconds_virtual_time\",\n\
         \x20 \"schemes\": [{}],\n  \"sizes_bytes\": [{}],\n  \"latency_ns\": [{}],\n\
         \x20 \"slept\": [{}],\n  \"spin_burn_ns\": [{}],\n  \"service_ns\": [{}]\n}}\n",
        series(&|r| format!("\"{}\"", r.scheme)),
        series(&|r| r.bytes.to_string()),
        series(&|r| r.latency.as_nanos().to_string()),
        series(&|r| r.slept.to_string()),
        series(&|r| r.spin_burn_ns.to_string()),
        series(&|r| r.svc_ns.to_string()),
    )
}

fn abl_chunk_fig() {
    let rows = abl_chunk();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![format_bytes(r.chunk), format_bytes(r.transfer), format_throughput(r.bandwidth)]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "ABL-CHUNK — staging chunk size vs 64MiB send bandwidth",
            &["chunk", "transfer", "bandwidth"],
            &table,
        )
    );
}

fn abl_block_fig() {
    let rows = abl_block();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.policy.to_string(),
                format_bytes(r.bytes),
                r.latency.to_string(),
                r.vm_paused.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "ABL-BLOCK — backend dispatch: blocking vs worker threads",
            &["policy", "size", "latency", "VM paused"],
            &table,
        )
    );
}

fn abl_cache_fig() {
    let report = abl_cache();
    let table: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                format_bytes(r.bytes),
                format_throughput(r.native_bw),
                format_throughput(r.cold_bw),
                format_throughput(r.warm_bw),
                format!("{:.1}%", 100.0 * r.cold_ratio()),
                format!("{:.1}%", 100.0 * r.warm_ratio()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "ABL-CACHE — remote-read throughput with the registration cache off/on",
            &["size", "native", "cache off", "cache warm", "off/native", "warm/native"],
            &table,
        )
    );
    println!(
        "warm VM cache: {} hits / {} misses (hit rate {:.0}%)",
        report.warm_hits,
        report.warm_misses,
        100.0 * report.hit_rate
    );
    println!("cache off reproduces Fig. 5's 72% ceiling; warm reads land within 10% of native\n");

    // Machine-readable companion for plotting scripts.
    let json = abl_cache_json(&report);
    let path = "BENCH_abl_cache.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Hand-rolled JSON (the build environment has no serde).
fn abl_cache_json(report: &vphi_bench::AblCacheReport) -> String {
    let field = |name: &str, f: fn(&vphi_bench::AblCacheRow) -> f64| -> String {
        let vals: Vec<String> = report.rows.iter().map(|r| format!("{:.1}", f(r))).collect();
        format!("  \"{}\": [{}]", name, vals.join(", "))
    };
    let sizes: Vec<String> = report.rows.iter().map(|r| r.bytes.to_string()).collect();
    format!(
        "{{\n  \"figure\": \"abl-cache\",\n  \"unit\": \"bytes_per_second_virtual_time\",\n\
         \x20 \"sizes_bytes\": [{}],\n{},\n{},\n{},\n\
         \x20 \"warm_hits\": {},\n  \"warm_misses\": {},\n  \"warm_hit_rate\": {:.4}\n}}\n",
        sizes.join(", "),
        field("native_bw", |r| r.native_bw),
        field("cache_off_bw", |r| r.cold_bw),
        field("cache_warm_bw", |r| r.warm_bw),
        report.warm_hits,
        report.warm_misses,
        report.hit_rate,
    )
}

fn abl_faults_fig() {
    let report = abl_faults();
    let table = vec![
        vec![
            "hook fire (disarmed)".to_string(),
            format!("{:.1} ns", report.disarmed_ns_per_fire),
            String::new(),
        ],
        vec![
            "hook fire (armed, idle plan)".to_string(),
            format!("{:.1} ns", report.armed_idle_ns_per_fire),
            String::new(),
        ],
        vec![
            "1-byte send (hooks disarmed)".to_string(),
            report.latency_disarmed.to_string(),
            format!("{:.0} ns wall", report.send_wall_ns),
        ],
        vec![
            "1-byte send (hooks armed)".to_string(),
            report.latency_armed.to_string(),
            format!("{} hook crossings", report.crossings_per_send),
        ],
        vec![
            "hook share of send wall time".to_string(),
            format!("{:.4}%", report.hook_overhead_pct),
            "budget: <1%".to_string(),
        ],
        vec![
            "card reset, 2 VMs attached".to_string(),
            report.reset_recovery.to_string(),
            format!(
                "quarantined {}/{} (victim/bystander)",
                report.victim_quarantined, report.bystander_quarantined
            ),
        ],
    ];
    println!(
        "{}",
        render_table(
            "ABL-FAULTS — steady-state cost of disarmed fault hooks + recovery latency",
            &["measurement", "cost", "notes"],
            &table,
        )
    );
    println!(
        "bystander unaffected: {}; victim reconnected after reset: {}\n",
        report.bystander_send_ok, report.victim_recovered_send_ok
    );

    // Machine-readable companion for plotting scripts.
    let json = abl_faults_json(&report);
    let path = "BENCH_faults.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Hand-rolled JSON (the build environment has no serde).
fn abl_faults_json(report: &vphi_bench::FaultsReport) -> String {
    format!(
        "{{\n  \"figure\": \"abl-faults\",\n\
         \x20 \"disarmed_ns_per_fire\": {:.2},\n\
         \x20 \"armed_idle_ns_per_fire\": {:.2},\n\
         \x20 \"crossings_per_send\": {},\n\
         \x20 \"send_wall_ns\": {:.0},\n\
         \x20 \"hook_overhead_pct\": {:.4},\n\
         \x20 \"latency_disarmed_us\": {:.3},\n\
         \x20 \"latency_armed_us\": {:.3},\n\
         \x20 \"reset_recovery_us\": {:.3},\n\
         \x20 \"victim_quarantined\": {},\n\
         \x20 \"bystander_quarantined\": {},\n\
         \x20 \"bystander_send_ok\": {},\n\
         \x20 \"victim_recovered_send_ok\": {}\n}}\n",
        report.disarmed_ns_per_fire,
        report.armed_idle_ns_per_fire,
        report.crossings_per_send,
        report.send_wall_ns,
        report.hook_overhead_pct,
        report.latency_disarmed.as_micros_f64(),
        report.latency_armed.as_micros_f64(),
        report.reset_recovery.as_micros_f64(),
        report.victim_quarantined,
        report.bystander_quarantined,
        report.bystander_send_ok,
        report.victim_recovered_send_ok,
    )
}

fn trace_breakdown_fig() {
    let report = trace_breakdown();

    let mut anchor_table: Vec<Vec<String>> = Stage::ALL
        .iter()
        .map(|s| {
            let t = report.anchor_stages[s.index()];
            let share = 100.0 * t.as_nanos() as f64 / report.anchor_total.as_nanos() as f64;
            vec![s.name().to_string(), t.to_string(), format!("{share:.1}%")]
        })
        .collect();
    anchor_table.push(vec![
        "end-to-end".to_string(),
        report.anchor_total.to_string(),
        "100.0%".to_string(),
    ]);
    println!(
        "{}",
        render_table(
            "TRACE — 1-byte send decomposed by stage (Fig. 4 anchor)",
            &["stage", "time", "share"],
            &anchor_table,
        )
    );

    let sweep_table: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            let mut row = vec![format_bytes(r.bytes), r.native.to_string(), r.vphi.to_string()];
            row.extend(Stage::ALL.iter().map(|s| r.stages[s.index()].to_string()));
            row.push(format!("{:.2}%", r.reconcile_err_pct()));
            row
        })
        .collect();
    let mut headers = vec!["size", "native", "vPHI"];
    headers.extend(Stage::ALL.iter().map(|s| s.name()));
    headers.push("recon err");
    println!(
        "{}",
        render_table(
            "TRACE — Fig. 5 sweep decomposed by stage (where the 28% goes)",
            &headers,
            &sweep_table,
        )
    );
    println!(
        "disarmed probe: {:.1} ns; {} probes/send over {:.0} ns wall = {:.4}% (budget <1%)\n",
        report.disarmed_probe_ns,
        report.spans_per_send + report.roots_per_send,
        report.send_wall_ns,
        report.trace_overhead_pct,
    );
    assert!(
        report.trace_overhead_pct < 1.0,
        "disarmed tracer overhead {:.4}% breaches the 1% budget",
        report.trace_overhead_pct
    );

    // Machine-readable companion for plotting scripts.
    let json = trace_breakdown_json(&report);
    let path = "BENCH_trace.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Hand-rolled JSON (the build environment has no serde).
fn trace_breakdown_json(report: &vphi_bench::TraceBreakdownReport) -> String {
    let stage_series = |f: &dyn Fn(&vphi_bench::TraceStageRow, Stage) -> u64| -> String {
        Stage::ALL
            .iter()
            .map(|&s| {
                let vals: Vec<String> = report.rows.iter().map(|r| f(r, s).to_string()).collect();
                format!("    \"{}\": [{}]", s.name(), vals.join(", "))
            })
            .collect::<Vec<_>>()
            .join(",\n")
    };
    let sizes: Vec<String> = report.rows.iter().map(|r| r.bytes.to_string()).collect();
    let native: Vec<String> = report.rows.iter().map(|r| r.native.as_nanos().to_string()).collect();
    let vphi: Vec<String> = report.rows.iter().map(|r| r.vphi.as_nanos().to_string()).collect();
    let anchor: Vec<String> = Stage::ALL
        .iter()
        .map(|s| format!("    \"{}\": {}", s.name(), report.anchor_stages[s.index()].as_nanos()))
        .collect();
    format!(
        "{{\n  \"figure\": \"trace-breakdown\",\n  \"unit\": \"nanoseconds_virtual_time\",\n\
         \x20 \"anchor_total_ns\": {},\n  \"anchor_stages_ns\": {{\n{}\n  }},\n\
         \x20 \"sizes_bytes\": [{}],\n  \"native_ns\": [{}],\n  \"vphi_ns\": [{}],\n\
         \x20 \"stages_ns\": {{\n{}\n  }},\n\
         \x20 \"max_reconcile_err_pct\": {:.4},\n\
         \x20 \"spans_per_send\": {},\n  \"roots_per_send\": {},\n\
         \x20 \"disarmed_probe_ns\": {:.2},\n  \"send_wall_ns\": {:.0},\n\
         \x20 \"trace_overhead_pct\": {:.4}\n}}\n",
        report.anchor_total.as_nanos(),
        anchor.join(",\n"),
        sizes.join(", "),
        native.join(", "),
        vphi.join(", "),
        stage_series(&|r, s| r.stages[s.index()].as_nanos()),
        report.rows.iter().map(vphi_bench::TraceStageRow::reconcile_err_pct).fold(0.0f64, f64::max),
        report.spans_per_send,
        report.roots_per_send,
        report.disarmed_probe_ns,
        report.send_wall_ns,
        report.trace_overhead_pct,
    )
}

fn zero_copy_fig() {
    let report = zero_copy();
    let table: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                format_bytes(r.bytes),
                format_throughput(r.native_bw),
                format_throughput(r.off_bw),
                format_throughput(r.zc_cold_bw),
                format_throughput(r.zc_warm_bw),
                format!("{:.1}%", 100.0 * r.off_ratio()),
                format!("{:.1}%", 100.0 * r.zc_cold_ratio()),
                format!("{:.1}%", 100.0 * r.zc_warm_ratio()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "ZERO-COPY — large-RMA throughput: staged seed vs aperture-mapped gather",
            &[
                "size",
                "native",
                "staged",
                "zc cold",
                "zc warm",
                "staged/nat",
                "cold/nat",
                "warm/nat"
            ],
            &table,
        )
    );
    let peak = report.rows.last().expect("rows");
    println!(
        "256MiB cache-cold: staged {:.1}% vs zero-copy {:.1}% of native (target ≥95%, floor 90%)",
        100.0 * peak.off_ratio(),
        100.0 * peak.zc_cold_ratio()
    );
    println!(
        "anchors: off {} / on {} (must be byte-identical); counters: {} maps, {} hits, {} sg descriptors, {} bytes unstaged",
        report.anchor_off,
        report.anchor_zc,
        report.windows_mapped,
        report.map_hits,
        report.sg_descriptors,
        report.staging_bytes_avoided,
    );
    println!(
        "aperture audit after close: {} windows, {} inflight (both must be 0)\n",
        report.mapped_after_close, report.inflight_after_close
    );
    assert_eq!(report.anchor_off, report.anchor_zc, "zero-copy moved the 1-byte anchor");
    assert!(
        peak.zc_cold_ratio() >= 0.90,
        "cache-cold zero-copy at 256MiB below the 90% floor: {:.3}",
        peak.zc_cold_ratio()
    );

    // Machine-readable companion for plotting scripts.
    let json = zero_copy_json(&report);
    let path = "BENCH_zc.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Hand-rolled JSON (the build environment has no serde).
fn zero_copy_json(report: &vphi_bench::ZeroCopyReport) -> String {
    let field = |name: &str, f: fn(&vphi_bench::ZeroCopyRow) -> f64| -> String {
        let vals: Vec<String> = report.rows.iter().map(|r| format!("{:.1}", f(r))).collect();
        format!("  \"{}\": [{}]", name, vals.join(", "))
    };
    let stages = |s: &[vphi_sim_core::SimDuration]| -> String {
        Stage::ALL
            .iter()
            .map(|st| format!("    \"{}\": {}", st.name(), s[st.index()].as_nanos()))
            .collect::<Vec<_>>()
            .join(",\n")
    };
    let sizes: Vec<String> = report.rows.iter().map(|r| r.bytes.to_string()).collect();
    format!(
        "{{\n  \"figure\": \"zero-copy\",\n  \"unit\": \"bytes_per_second_virtual_time\",\n\
         \x20 \"sizes_bytes\": [{}],\n{},\n{},\n{},\n{},\n\
         \x20 \"anchor_off_ns\": {},\n  \"anchor_zc_ns\": {},\n\
         \x20 \"peak_stages_off_ns\": {{\n{}\n  }},\n\
         \x20 \"peak_stages_zc_ns\": {{\n{}\n  }},\n\
         \x20 \"windows_mapped\": {},\n  \"map_hits\": {},\n  \"sg_descriptors\": {},\n\
         \x20 \"staging_bytes_avoided\": {},\n  \"off_staging_bytes_avoided\": {},\n\
         \x20 \"mapped_after_close\": {},\n  \"inflight_after_close\": {}\n}}\n",
        sizes.join(", "),
        field("native_bw", |r| r.native_bw),
        field("staged_bw", |r| r.off_bw),
        field("zc_cold_bw", |r| r.zc_cold_bw),
        field("zc_warm_bw", |r| r.zc_warm_bw),
        report.anchor_off.as_nanos(),
        report.anchor_zc.as_nanos(),
        stages(&report.peak_stages_off),
        stages(&report.peak_stages_zc),
        report.windows_mapped,
        report.map_hits,
        report.sg_descriptors,
        report.staging_bytes_avoided,
        report.off_staging_bytes_avoided,
        report.mapped_after_close,
        report.inflight_after_close,
    )
}

fn share_fig() {
    let rows = sharing_scaling(&[1, 2, 4, 8]);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.vms.to_string(),
                format_bytes(r.bytes_each),
                r.mean_latency.to_string(),
                format_throughput(r.aggregate_bw),
                format!("{:.3}", r.fairness),
                format!("{:.2}x", r.compute_slowdown),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "SHARE — N VMs sharing one Xeon Phi (64MiB remote reads + 224-thread dgemm each)",
            &["VMs", "bytes/VM", "mean latency", "aggregate BW", "fairness", "compute slowdown"],
            &table,
        )
    );
}

fn mq_scale_fig() {
    let report = mq_scale();
    let table: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.queues.to_string(),
                r.vms.to_string(),
                r.requests.to_string(),
                format_bytes(r.bytes_each),
                format!("{:.0}%", 100.0 * r.busiest_lane_share),
                r.makespan.to_string(),
                format_throughput(r.aggregate_bw),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "MQ-SCALE — aggregate throughput vs virtqueue lanes × VMs",
            &["queues", "VMs", "requests", "bytes/req", "busiest lane", "makespan", "aggregate BW"],
            &table,
        )
    );
    println!("4-VM speedup at 4 queues vs 1: {:.2}x (floor 2.5x)", report.mq_speedup());
    println!(
        "1-queue 1B anchor: {} (seed: 382us); default config: {}",
        report.anchor_single_queue, report.anchor_default
    );
    println!(
        "pipelined {} read: {} vs monolithic {} ({:.1}% better, floor 20%)\n",
        format_bytes(report.rma_bytes),
        report.rma_pipelined,
        report.rma_monolithic,
        report.rma_improvement_pct()
    );

    // Machine-readable companion for plotting scripts.
    let json = mq_scale_json(&report);
    let path = "BENCH_mq.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Hand-rolled JSON (the build environment has no serde).
fn mq_scale_json(report: &vphi_bench::MqScaleReport) -> String {
    let series = |f: &dyn Fn(&vphi_bench::MqScaleRow) -> String| -> String {
        report.rows.iter().map(f).collect::<Vec<_>>().join(", ")
    };
    format!(
        "{{\n  \"figure\": \"mq-scale\",\n  \"unit\": \"bytes_per_second_virtual_time\",\n\
         \x20 \"queues\": [{}],\n  \"vms\": [{}],\n  \"requests\": [{}],\n\
         \x20 \"busiest_lane_share\": [{}],\n  \"makespan_ns\": [{}],\n\
         \x20 \"aggregate_bw\": [{}],\n\
         \x20 \"mq_speedup_4vm_4q_vs_1q\": {:.4},\n\
         \x20 \"anchor_single_queue_ns\": {},\n  \"anchor_default_ns\": {},\n\
         \x20 \"rma_bytes\": {},\n  \"rma_monolithic_ns\": {},\n\
         \x20 \"rma_pipelined_ns\": {},\n  \"rma_improvement_pct\": {:.2}\n}}\n",
        series(&|r| r.queues.to_string()),
        series(&|r| r.vms.to_string()),
        series(&|r| r.requests.to_string()),
        series(&|r| format!("{:.4}", r.busiest_lane_share)),
        series(&|r| r.makespan.as_nanos().to_string()),
        series(&|r| format!("{:.1}", r.aggregate_bw)),
        report.mq_speedup(),
        report.anchor_single_queue.as_nanos(),
        report.anchor_default.as_nanos(),
        report.rma_bytes,
        report.rma_monolithic.as_nanos(),
        report.rma_pipelined.as_nanos(),
        report.rma_improvement_pct(),
    )
}

fn open_loop_fig() {
    let report = open_loop();
    let table: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                if r.batch == 1 { "1/kick".to_string() } else { format!("batch {}", r.batch) },
                format!("{:.0}", r.rate_per_vm),
                r.vms.to_string(),
                r.requests.to_string(),
                format!("{:.0}", r.throughput_rps),
                r.p50.to_string(),
                r.p99.to_string(),
                r.p999.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "OPEN-LOOP — serving throughput-latency: batched SQ/CQ vs one-request-per-kick",
            &["mode", "rate/VM", "VMs", "requests", "rps", "p50", "p99", "p999"],
            &table,
        )
    );
    println!(
        "saturation (p99 ≤ 2ms): batched {:.0} rps vs one-per-kick {:.0} rps — {:.2}x (floor 2x)",
        report.batched_saturation_rps(),
        report.single_saturation_rps(),
        report.batching_speedup()
    );
    println!(
        "doorbell ledger: {} entries / {} kicks = {:.3} kicks/submission; backend popped {:.1} chains/drain",
        report.ledger.batch_entries,
        report.ledger.batch_kicks,
        report.ledger.kicks_per_submission(),
        report.ledger.chains_per_drain()
    );
    println!("1-byte blocking anchor after the redesign: {} (seed: 382us)\n", report.anchor);

    // Machine-readable companion for plotting scripts.
    let json = open_loop_json(&report);
    let path = "BENCH_serve.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Hand-rolled JSON (the build environment has no serde).
fn open_loop_json(report: &vphi_bench::OpenLoopReport) -> String {
    let series = |f: &dyn Fn(&vphi_bench::OpenLoopRow) -> String| -> String {
        report.rows.iter().map(f).collect::<Vec<_>>().join(", ")
    };
    format!(
        "{{\n  \"figure\": \"open-loop\",\n  \"unit\": \"nanoseconds_virtual_time\",\n\
         \x20 \"batch\": [{}],\n  \"rate_per_vm\": [{}],\n  \"vms\": [{}],\n\
         \x20 \"requests\": [{}],\n  \"throughput_rps\": [{}],\n\
         \x20 \"p50_ns\": [{}],\n  \"p99_ns\": [{}],\n  \"p999_ns\": [{}],\n\
         \x20 \"batched_saturation_rps\": {:.1},\n  \"single_saturation_rps\": {:.1},\n\
         \x20 \"batching_speedup\": {:.4},\n\
         \x20 \"ledger_batch_entries\": {},\n  \"ledger_batch_kicks\": {},\n\
         \x20 \"ledger_kicks_per_submission\": {:.4},\n\
         \x20 \"ledger_burst_drains\": {},\n  \"ledger_burst_chains\": {},\n\
         \x20 \"anchor_ns\": {}\n}}\n",
        series(&|r| r.batch.to_string()),
        series(&|r| format!("{:.0}", r.rate_per_vm)),
        series(&|r| r.vms.to_string()),
        series(&|r| r.requests.to_string()),
        series(&|r| format!("{:.1}", r.throughput_rps)),
        series(&|r| r.p50.as_nanos().to_string()),
        series(&|r| r.p99.as_nanos().to_string()),
        series(&|r| r.p999.as_nanos().to_string()),
        report.batched_saturation_rps(),
        report.single_saturation_rps(),
        report.batching_speedup(),
        report.ledger.batch_entries,
        report.ledger.batch_kicks,
        report.ledger.kicks_per_submission(),
        report.ledger.burst_drains,
        report.ledger.burst_chains,
        report.anchor.as_nanos(),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args
        .iter()
        .position(|a| a == "--fig")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("all");

    println!("vPHI reproduction — figure harness (virtual-time measurements)\n");
    match which {
        "4" => fig4(),
        "breakdown" => breakdown(),
        "5" => fig5(),
        "6" => dgemm_fig(56, 6),
        "7" => dgemm_fig(112, 7),
        "8" => dgemm_fig(224, 8),
        "abl-wait" => abl_wait_fig(),
        "abl-chunk" => abl_chunk_fig(),
        "abl-block" => abl_block_fig(),
        "abl-cache" => abl_cache_fig(),
        "abl-faults" => abl_faults_fig(),
        "trace-breakdown" => trace_breakdown_fig(),
        "zero-copy" => zero_copy_fig(),
        "share" => share_fig(),
        "mq-scale" => mq_scale_fig(),
        "open-loop" => open_loop_fig(),
        "all" => {
            fig4();
            breakdown();
            fig5();
            dgemm_fig(56, 6);
            dgemm_fig(112, 7);
            dgemm_fig(224, 8);
            abl_wait_fig();
            abl_chunk_fig();
            abl_block_fig();
            abl_cache_fig();
            abl_faults_fig();
            trace_breakdown_fig();
            zero_copy_fig();
            share_fig();
            mq_scale_fig();
            open_loop_fig();
        }
        other => {
            eprintln!(
                "unknown figure '{other}': use 4|breakdown|5|6|7|8|abl-wait|abl-chunk|abl-block|abl-cache|abl-faults|trace-breakdown|zero-copy|share|mq-scale|open-loop|all"
            );
            std::process::exit(2);
        }
    }
}

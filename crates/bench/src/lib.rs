//! # vphi-bench — the experiment harness
//!
//! One module per paper artifact, each returning the figure's data series
//! in virtual time.  The `figures` binary prints them as tables; the
//! Criterion benches additionally measure the *simulator's* wall-clock
//! cost per operation (implementation microbenchmarks).
//!
//! | paper artifact | module |
//! |---|---|
//! | Fig. 4 (send-recv latency)          | [`experiments::fig4`] |
//! | §IV-B breakdown (93% waiting)       | [`experiments::breakdown`] |
//! | Fig. 5 (remote-read throughput)     | [`experiments::fig5`] |
//! | Figs. 6–8 (dgemm launch+execute)    | [`experiments::dgemm`] |
//! | ABL-WAIT / ABL-CHUNK / ABL-BLOCK    | [`experiments::ablations`] |
//! | ABL-CACHE (registration cache)      | [`experiments::abl_cache`] |
//! | SHARE (multi-VM sharing)            | [`experiments::sharing`] |
//! | MQ-SCALE (multi-queue transport)    | [`experiments::mq_scale`] |
//! | OPEN-LOOP (serving throughput-latency) | [`experiments::open_loop`] |
//! | TRACE (per-stage gap decomposition) | [`experiments::trace_breakdown`] |

pub mod experiments;
pub mod support;

pub use experiments::*;

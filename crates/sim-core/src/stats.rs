//! Small statistics helpers for the benchmark harness.

use crate::units::SimDuration;

/// Online mean/variance/min/max accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    pub fn new() -> Self {
        OnlineStats { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn push_duration(&mut self, d: SimDuration) {
        self.push(d.as_nanos() as f64);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        self.mean
    }

    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    pub fn mean_duration(&self) -> SimDuration {
        SimDuration::from_nanos(self.mean.round() as u64)
    }
}

/// Exact percentile over a sample set (nearest-rank method).
pub fn percentile(samples: &mut [f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
    let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.saturating_sub(1).min(samples.len() - 1)]
}

/// Jain's fairness index over per-client allocations.  1.0 = perfectly
/// fair; 1/n = one client got everything.
pub fn jain_fairness(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (xs.len() as f64 * sum_sq)
}

/// One row of a figure series: an x value (bytes, matrix size, …) with
/// measured native/host and vPHI virtual times.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    pub x: u64,
    pub host: SimDuration,
    pub vphi: SimDuration,
}

impl SeriesPoint {
    /// vPHI time normalized to host (host = 1.0).
    pub fn normalized(&self) -> f64 {
        if self.host.is_zero() {
            f64::NAN
        } else {
            self.vphi.as_nanos() as f64 / self.host.as_nanos() as f64
        }
    }

    /// Absolute virtualization overhead.
    pub fn overhead(&self) -> SimDuration {
        self.vphi.saturating_sub(self.host)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample stddev of this classic set is ~2.138.
        assert!((s.stddev() - 2.1380899).abs() < 1e-4);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_empty_and_single() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), 0.0);
        let mut s = OnlineStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut v: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        assert_eq!(percentile(&mut v, 50.0), 50.0);
        assert_eq!(percentile(&mut v, 99.0), 99.0);
        assert_eq!(percentile(&mut v, 100.0), 100.0);
        assert_eq!(percentile(&mut [], 50.0), 0.0);
    }

    #[test]
    fn fairness_index() {
        assert!((jain_fairness(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        let skewed = jain_fairness(&[4.0, 0.0, 0.0, 0.0]);
        assert!((skewed - 0.25).abs() < 1e-12);
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn series_point_normalization() {
        let p = SeriesPoint {
            x: 1,
            host: SimDuration::from_micros(7),
            vphi: SimDuration::from_micros(382),
        };
        assert!((p.normalized() - 382.0 / 7.0).abs() < 1e-9);
        assert_eq!(p.overhead(), SimDuration::from_micros(375));
    }
}

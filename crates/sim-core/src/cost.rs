//! The structural cost model.
//!
//! Every virtual-time charge in the simulation comes from a named parameter
//! in [`CostModel`].  The [`CostModel::paper_calibrated`] preset is fitted
//! to the vPHI paper's own measurements so that the reproduction hits the
//! paper's anchor points *mechanistically*:
//!
//! * native 1-byte send/recv latency = **7 µs** (Fig. 4): the sum of the
//!   native-path constants (`host_syscall` + `scif_post` + `dma_setup` +
//!   `link_latency` + `device_deliver` + `completion`).
//! * vPHI 1-byte latency = **382 µs** (Fig. 4): native path + the
//!   paravirtual detour, dominated by `guest_wakeup` (the frontend's
//!   sleep/wake-up scheme), which is **93%** of the 375 µs overhead — the
//!   paper's in-text breakdown.
//! * native remote-read peak = **6.4 GB/s**, vPHI = **4.6 GB/s (72%)**
//!   (Fig. 5): the ratio emerges from `page_translate` (per 4 KiB page
//!   pinned/translated by the backend) against the per-byte link time.
//!
//! Nothing downstream hard-codes those figures; ablating a parameter moves
//! the curves, which is exactly what the ablation benches demonstrate.

use crate::units::SimDuration;

/// Size of a small page, shared by guest, host and device memory models.
pub const PAGE_SIZE: u64 = 4096;

/// `KMALLOC_MAX_SIZE` on x86_64 — the largest physically-contiguous
/// allocation the guest kernel can hand to the virtio ring, and therefore
/// the chunk size of vPHI staged transfers (paper §III, implementation
/// details).
pub const KMALLOC_MAX_SIZE: u64 = 4 * 1024 * 1024;

/// Size of a huge page (2 MiB on x86_64) — the pinning and aperture-
/// mapping granule of the zero-copy RMA path: registered windows are
/// pinned huge-page-aligned and each scatter-gather descriptor covers at
/// most one huge page of the device aperture.
pub const HUGE_PAGE_SIZE: u64 = 2 * 1024 * 1024;

/// All structural costs, in virtual time.  See the module docs for the
/// calibration story.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    // ---- native SCIF path -------------------------------------------------
    /// Host user→kernel syscall entry+exit (ioctl on /dev/mic/scif).
    pub host_syscall: SimDuration,
    /// Host SCIF driver work to post a message descriptor + ring doorbell.
    pub scif_post: SimDuration,
    /// Programming a DMA channel descriptor.
    pub dma_setup: SimDuration,
    /// PCIe transaction latency (per transfer, not per byte).
    pub link_latency: SimDuration,
    /// Device-side (uOS) SCIF driver delivery + waking the server thread.
    pub device_deliver: SimDuration,
    /// Completion write-back and host-side completion processing.
    pub completion: SimDuration,
    /// Extra setup for registered-window RMA operations (window lookup,
    /// protection checks).
    pub rma_setup: SimDuration,

    // ---- bandwidths --------------------------------------------------------
    /// PCIe link bandwidth in bytes per virtual second (DMA per-byte cost).
    pub link_bytes_per_sec: f64,
    /// memcpy bandwidth for user↔kernel copies, bytes per virtual second.
    pub copy_bytes_per_sec: f64,

    // ---- paravirtual detour (vPHI) -----------------------------------------
    /// Guest user→guest kernel syscall into the frontend driver.
    pub guest_syscall: SimDuration,
    /// Guest kmalloc of a physically-contiguous staging chunk.
    pub guest_kmalloc: SimDuration,
    /// Frontend: enqueue descriptor chain on the virtio avail ring.
    pub ring_push: SimDuration,
    /// Guest kick → vm-exit → KVM → QEMU event-loop wakeup.
    pub vmexit_kick: SimDuration,
    /// Backend: pop the ring and decode the request.
    pub backend_decode: SimDuration,
    /// Backend: map one descriptor chain's guest buffers into host VA.
    pub guest_buf_map: SimDuration,
    /// Backend: per-4KiB-page pin + GPA→HVA translation for RMA buffers.
    /// This is the term that caps vPHI remote-read throughput at 72% of
    /// native in Fig. 5.
    pub page_translate: SimDuration,
    /// Backend: probe of the RMA registration cache (one hash lookup +
    /// LRU touch).  Paid on every cached-path RMA request, hit or miss; a
    /// hit then skips the per-page `page_translate` charges entirely.
    pub reg_cache_lookup: SimDuration,
    /// Backend: pin one huge page of a registered window and install its
    /// aperture mapping (zero-copy RMA cold path).  Replaces the per-4KiB
    /// `page_translate` term wholesale: one huge page covers 512 small
    /// pages, so the cold mapping cost is ~512× cheaper per byte than
    /// staged translation.
    pub window_pin: SimDuration,
    /// Backend: emit one scatter-gather DMA descriptor over a mapped
    /// aperture subwindow (zero-copy RMA, paid hit or miss).
    pub sg_descriptor: SimDuration,
    /// Backend: push the response on the used ring.
    pub used_push: SimDuration,
    /// Virtual-interrupt injection (QEMU → KVM irqfd → guest vector).
    pub irq_inject: SimDuration,
    /// The frontend's interrupt-mode waiting scheme: enqueue on the wait
    /// queue, sleep, be woken by the interrupt handler's wake-all, re-check
    /// the ring, get rescheduled.  The paper measures this at 93% of the
    /// 375 µs virtualization overhead.
    pub guest_wakeup: SimDuration,
    /// One polling iteration on the used ring (busy-wait scheme).
    pub poll_iteration: SimDuration,
    /// Latency cost of the polling scheme observing a completion (spin
    /// granularity; tiny, but burns a vCPU).
    pub poll_observe: SimDuration,
    /// Spawning + retiring a QEMU worker thread (non-blocking dispatch).
    pub worker_spawn: SimDuration,
    /// Guest page-fault exit + KVM `VM_PFNPHI` resolution for vPHI-mmap'ed
    /// device memory (first touch of a page).
    pub pfn_fault_resolve: SimDuration,

    // ---- device-side compute ----------------------------------------------
    /// uOS scheduler: enqueue a thread on a core run queue.
    pub uos_enqueue: SimDuration,
    /// uOS scheduler context-switch cost (charged per timeslice when a core
    /// is oversubscribed).
    pub uos_context_switch: SimDuration,
    /// uOS scheduler timeslice length.
    pub uos_timeslice: SimDuration,
    /// coi_daemon handling of one control message.
    pub coi_control: SimDuration,
    /// Process creation on the device (fork+exec of a shipped binary).
    pub device_spawn_process: SimDuration,
}

impl CostModel {
    /// The preset fitted to the paper's measurements (see module docs).
    pub fn paper_calibrated() -> Self {
        CostModel {
            // Native path: 0.6 + 0.9 + 1.5 + 0.9 + 1.6 + 1.5 = 7.0 µs.
            host_syscall: SimDuration::from_nanos(600),
            scif_post: SimDuration::from_nanos(900),
            dma_setup: SimDuration::from_nanos(1_500),
            link_latency: SimDuration::from_nanos(900),
            device_deliver: SimDuration::from_nanos(1_600),
            completion: SimDuration::from_nanos(1_500),
            rma_setup: SimDuration::from_nanos(2_000),

            // Fig. 5 native peak: 6.4 GB/s.
            link_bytes_per_sec: 6.4e9,
            copy_bytes_per_sec: 8.0e9,

            // Paravirtual detour.  The non-wakeup constants sum to 26.25 µs;
            // guest_wakeup is 348.75 µs, so overhead = 375 µs with the
            // waiting scheme at exactly 93% — the paper's breakdown.
            guest_syscall: SimDuration::from_nanos(600),
            guest_kmalloc: SimDuration::from_nanos(1_400),
            ring_push: SimDuration::from_nanos(650),
            vmexit_kick: SimDuration::from_nanos(10_500),
            backend_decode: SimDuration::from_nanos(1_800),
            guest_buf_map: SimDuration::from_nanos(1_200),
            // 640 ns/page of link time vs 249 ns/page of translate gives
            // 640 / (640 + 249) = 0.72 — Fig. 5's 72%.
            page_translate: SimDuration::from_nanos(249),
            // One HashMap probe + LRU touch under the backend lock.  Not
            // part of any floor sum: it is only charged on the cached RMA
            // path, where it replaces (hit) or fronts (miss) the per-page
            // translate term.
            reg_cache_lookup: SimDuration::from_nanos(150),
            // Both zero-copy terms live outside every floor sum: they are
            // charged only on the `zero_copy_rma` path, where they replace
            // the per-page translate term.  1.8 µs per pinned huge page
            // and 180 ns per SG descriptor keep the 256 MiB cold mapping
            // cost (~254 µs) far below the 16.3 ms it replaces.
            window_pin: SimDuration::from_nanos(1_800),
            sg_descriptor: SimDuration::from_nanos(180),
            used_push: SimDuration::from_nanos(600),
            irq_inject: SimDuration::from_nanos(9_500),
            guest_wakeup: SimDuration::from_nanos(348_750),
            poll_iteration: SimDuration::from_nanos(120),
            poll_observe: SimDuration::from_nanos(2_000),
            worker_spawn: SimDuration::from_nanos(11_000),
            pfn_fault_resolve: SimDuration::from_nanos(4_500),

            uos_enqueue: SimDuration::from_nanos(700),
            uos_context_switch: SimDuration::from_nanos(2_200),
            uos_timeslice: SimDuration::from_micros(1_000),
            coi_control: SimDuration::from_micros(15),
            device_spawn_process: SimDuration::from_micros(900),
        }
    }

    /// Time for the link to move `bytes` (per-byte cost only; add
    /// `link_latency` / `dma_setup` per transaction).
    pub fn link_transfer(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.link_bytes_per_sec)
    }

    /// Time for a CPU copy of `bytes` (user↔kernel or staging copies).
    pub fn cpu_copy(&self, bytes: u64) -> SimDuration {
        if bytes == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs_f64(bytes as f64 / self.copy_bytes_per_sec)
        }
    }

    /// Backend pin/translate cost for a buffer of `bytes` (per touched
    /// 4 KiB page).
    pub fn translate_pages(&self, bytes: u64) -> SimDuration {
        self.page_translate * bytes.div_ceil(PAGE_SIZE).max(1)
    }

    /// Number of `KMALLOC_MAX_SIZE` staging chunks needed for `bytes`.
    pub fn chunks_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(KMALLOC_MAX_SIZE).max(1)
    }

    /// Number of huge pages (and SG descriptors) covering `bytes`.
    pub fn huge_pages_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(HUGE_PAGE_SIZE).max(1)
    }

    /// Cold-path cost of pinning + aperture-mapping a window of `bytes`
    /// (per touched huge page).
    pub fn pin_window(&self, bytes: u64) -> SimDuration {
        self.window_pin * self.huge_pages_for(bytes)
    }

    /// Cost of building the SG descriptor list for `bytes` (one
    /// descriptor per huge page, paid on every zero-copy request).
    pub fn sg_build(&self, bytes: u64) -> SimDuration {
        self.sg_descriptor * self.huge_pages_for(bytes)
    }

    /// The sum of the native-path constants — the native small-message
    /// latency floor (7 µs in the calibrated preset).
    pub fn native_floor(&self) -> SimDuration {
        self.host_syscall
            + self.scif_post
            + self.dma_setup
            + self.link_latency
            + self.device_deliver
            + self.completion
    }

    /// The per-request paravirtual constants excluding the waiting scheme.
    pub fn paravirtual_floor_no_wait(&self) -> SimDuration {
        self.guest_syscall
            + self.guest_kmalloc
            + self.ring_push
            + self.vmexit_kick
            + self.backend_decode
            + self.guest_buf_map
            + self.used_push
            + self.irq_inject
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_floor_is_seven_microseconds() {
        let m = CostModel::paper_calibrated();
        assert_eq!(m.native_floor(), SimDuration::from_micros(7));
    }

    #[test]
    fn paravirtual_overhead_matches_paper_anchor() {
        let m = CostModel::paper_calibrated();
        // Total vPHI 1-byte latency = native floor + paravirtual constants
        // + waiting scheme = 382 µs; overhead = 375 µs, of which the
        // waiting scheme is 93%.
        let overhead = m.paravirtual_floor_no_wait() + m.guest_wakeup;
        assert_eq!(overhead, SimDuration::from_micros(375));
        let share = m.guest_wakeup.as_nanos() as f64 / overhead.as_nanos() as f64;
        assert!((share - 0.93).abs() < 1e-9, "waiting-scheme share = {share}");
        assert_eq!(m.native_floor() + overhead, SimDuration::from_micros(382));
    }

    #[test]
    fn page_translate_yields_72_percent_peak() {
        let m = CostModel::paper_calibrated();
        // Asymptotic throughput ratio = per-page link time over per-page
        // (link + translate) time.
        let link_per_page = m.link_transfer(PAGE_SIZE).as_nanos() as f64;
        let ratio = link_per_page / (link_per_page + m.page_translate.as_nanos() as f64);
        assert!((ratio - 0.72).abs() < 0.005, "peak ratio = {ratio}");
    }

    #[test]
    fn link_transfer_scales_linearly() {
        let m = CostModel::paper_calibrated();
        let one = m.link_transfer(1 << 20);
        let four = m.link_transfer(4 << 20);
        assert!((four.as_nanos() as f64 / one.as_nanos() as f64 - 4.0).abs() < 0.01);
    }

    #[test]
    fn chunk_count() {
        let m = CostModel::paper_calibrated();
        assert_eq!(m.chunks_for(0), 1);
        assert_eq!(m.chunks_for(1), 1);
        assert_eq!(m.chunks_for(KMALLOC_MAX_SIZE), 1);
        assert_eq!(m.chunks_for(KMALLOC_MAX_SIZE + 1), 2);
        assert_eq!(m.chunks_for(10 * KMALLOC_MAX_SIZE), 10);
    }

    #[test]
    fn translate_charges_per_page() {
        let m = CostModel::paper_calibrated();
        assert_eq!(m.translate_pages(1), m.page_translate);
        assert_eq!(m.translate_pages(PAGE_SIZE), m.page_translate);
        assert_eq!(m.translate_pages(PAGE_SIZE + 1), m.page_translate * 2);
    }

    #[test]
    fn zero_copy_terms_stay_off_the_calibrated_anchors() {
        let m = CostModel::paper_calibrated();
        // The mapping terms are per-huge-page, so a 256 MiB cold map costs
        // 128 × (1.8 µs + 180 ns) ≈ 253 µs — under 2% of the 16.3 ms of
        // staged translation it replaces.
        assert_eq!(m.huge_pages_for(0), 1);
        assert_eq!(m.huge_pages_for(HUGE_PAGE_SIZE), 1);
        assert_eq!(m.huge_pages_for(HUGE_PAGE_SIZE + 1), 2);
        assert_eq!(m.huge_pages_for(256 * 1024 * 1024), 128);
        assert_eq!(m.pin_window(256 * 1024 * 1024), m.window_pin * 128);
        assert_eq!(m.sg_build(256 * 1024 * 1024), m.sg_descriptor * 128);
        let cold_map = m.pin_window(256 * 1024 * 1024) + m.sg_build(256 * 1024 * 1024);
        assert!(cold_map * 50 < m.translate_pages(256 * 1024 * 1024));
        // Neither term is part of any floor sum: the 7/375/382 µs anchors
        // are pinned by the other tests and must not move.
        assert_eq!(m.native_floor(), SimDuration::from_micros(7));
        assert_eq!(m.paravirtual_floor_no_wait() + m.guest_wakeup, SimDuration::from_micros(375));
    }

    #[test]
    fn cpu_copy_zero_bytes_is_free() {
        let m = CostModel::paper_calibrated();
        assert_eq!(m.cpu_copy(0), SimDuration::ZERO);
        assert!(m.cpu_copy(1 << 20) > SimDuration::ZERO);
    }
}

//! Virtual time and size units.
//!
//! All virtual durations in the simulation are integer nanoseconds.  We use
//! newtypes rather than `std::time::Duration` so that virtual time can never
//! be confused with wall-clock time measured by the host OS.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// One kibibyte (2^10 bytes).
pub const KIB: u64 = 1024;
/// One mebibyte (2^20 bytes).
pub const MIB: u64 = 1024 * KIB;
/// One gibibyte (2^30 bytes).
pub const GIB: u64 = 1024 * MIB;

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from a floating-point number of seconds, rounding to the
    /// nearest nanosecond.  Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Throughput achieved when moving `bytes` in this duration, in bytes
    /// per (virtual) second.  Returns `f64::INFINITY` for a zero duration.
    pub fn throughput(self, bytes: u64) -> f64 {
        if self.0 == 0 {
            f64::INFINITY
        } else {
            bytes as f64 / self.as_secs_f64()
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.2}us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.2}ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        }
    }
}

/// An absolute point on the virtual clock, in nanoseconds since boot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    pub fn elapsed_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

/// Render a byte count with a binary-unit suffix ("4KiB", "2.5MiB", …).
pub fn format_bytes(bytes: u64) -> String {
    if bytes < KIB {
        format!("{bytes}B")
    } else if bytes < MIB {
        let v = bytes as f64 / KIB as f64;
        if v.fract() == 0.0 {
            format!("{v:.0}KiB")
        } else {
            format!("{v:.1}KiB")
        }
    } else if bytes < GIB {
        let v = bytes as f64 / MIB as f64;
        if v.fract() == 0.0 {
            format!("{v:.0}MiB")
        } else {
            format!("{v:.1}MiB")
        }
    } else {
        format!("{:.2}GiB", bytes as f64 / GIB as f64)
    }
}

/// Render a throughput (bytes/s) as "X.XX GB/s" using decimal gigabytes,
/// matching the units of the paper's Figure 5.
pub fn format_throughput(bytes_per_sec: f64) -> String {
    format!("{:.2}GB/s", bytes_per_sec / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_micros(7), SimDuration(7_000));
        assert_eq!(SimDuration::from_millis(3), SimDuration(3_000_000));
        assert_eq!(SimDuration::from_secs(2), SimDuration(2_000_000_000));
        assert_eq!(SimDuration::from_secs_f64(1.5), SimDuration(1_500_000_000));
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_micros(10);
        let b = SimDuration::from_micros(4);
        assert_eq!(a + b, SimDuration::from_micros(14));
        assert_eq!(a - b, SimDuration::from_micros(6));
        assert_eq!(a * 3, SimDuration::from_micros(30));
        assert_eq!(a / 2, SimDuration::from_micros(5));
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total, SimDuration::from_micros(10));
    }

    #[test]
    fn throughput_of_transfer() {
        // 6.4 GB in one virtual second is 6.4 GB/s.
        let d = SimDuration::from_secs(1);
        let tput = d.throughput(6_400_000_000);
        assert!((tput - 6.4e9).abs() < 1.0);
        assert!(SimDuration::ZERO.throughput(1).is_infinite());
    }

    #[test]
    fn time_ordering_and_elapsed() {
        let t0 = SimTime(100);
        let t1 = t0 + SimDuration(50);
        assert!(t1 > t0);
        assert_eq!(t1.elapsed_since(t0), SimDuration(50));
        assert_eq!(t0.elapsed_since(t1), SimDuration::ZERO);
        assert_eq!(t0.max(t1), t1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration(382_000).to_string(), "382.00us");
        assert_eq!(SimDuration(7_000).to_string(), "7.00us");
        assert_eq!(SimDuration(999).to_string(), "999ns");
        assert_eq!(SimDuration(1_500_000).to_string(), "1.50ms");
        assert_eq!(SimDuration(2_000_000_000).to_string(), "2.000s");
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(format_bytes(1), "1B");
        assert_eq!(format_bytes(4 * KIB), "4KiB");
        assert_eq!(format_bytes(4 * MIB), "4MiB");
        assert_eq!(format_bytes(3 * MIB / 2), "1.5MiB");
        assert_eq!(format_bytes(2 * GIB), "2.00GiB");
    }

    #[test]
    fn throughput_formatting() {
        assert_eq!(format_throughput(6.4e9), "6.40GB/s");
    }
}

//! The global virtual clock and contended-resource modelling.
//!
//! Components *charge* virtual time rather than measuring wall clock.  The
//! clock is a monotonic atomic counter: `advance` moves it forward by a
//! duration and returns the new now; `observe` folds an externally-computed
//! completion time into the clock (monotonic max).  Because requests carry
//! their own [`crate::Timeline`]s, per-request latency never depends on the
//! global clock — the clock exists for (a) ordering across VMs in sharing
//! experiments and (b) the uOS scheduler's notion of "now".

use std::sync::atomic::{AtomicU64, Ordering};

use crate::units::{SimDuration, SimTime};

/// A global, monotonic virtual clock.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_ns: AtomicU64,
}

impl VirtualClock {
    pub fn new() -> Self {
        VirtualClock { now_ns: AtomicU64::new(0) }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        SimTime(self.now_ns.load(Ordering::Acquire))
    }

    /// Advance the clock by `d` and return the time after the advance.
    ///
    /// Charging virtual time while holding a lock would serialize unrelated
    /// requests behind the holder's simulated latency, so the audit layer
    /// treats any held tracked lock here as an ordering violation.
    pub fn advance(&self, d: SimDuration) -> SimTime {
        vphi_sync::audit::assert_lockless("VirtualClock::advance");
        SimTime(self.now_ns.fetch_add(d.0, Ordering::AcqRel) + d.0)
    }

    /// Fold an externally computed absolute time into the clock: the clock
    /// becomes `max(now, t)`.  Used when a resource computes a completion
    /// time that may lie in the clock's future.
    pub fn observe(&self, t: SimTime) -> SimTime {
        vphi_sync::audit::assert_lockless("VirtualClock::observe");
        let mut cur = self.now_ns.load(Ordering::Acquire);
        loop {
            if t.0 <= cur {
                return SimTime(cur);
            }
            match self.now_ns.compare_exchange_weak(cur, t.0, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return t,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Reset to zero.  Only used between benchmark repetitions.
    pub fn reset(&self) {
        self.now_ns.store(0, Ordering::Release);
    }
}

/// A serially-shared resource (e.g. the PCIe link or a DMA channel) under
/// virtual time.
///
/// A user wanting the resource for `hold` starting no earlier than `at`
/// receives a `(start, end)` grant where `start = max(at, free_at)` and the
/// resource is busy until `end = start + hold`.  The difference
/// `start - at` is queueing delay, which callers typically charge to their
/// timeline as a `LinkContention` span.  Total busy time is accumulated so
/// sharing experiments can compute aggregate utilization.
#[derive(Debug, Default)]
pub struct BusyResource {
    free_at_ns: AtomicU64,
    busy_total_ns: AtomicU64,
    grants: AtomicU64,
}

/// The outcome of an [`BusyResource::acquire`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When the resource actually became available to this user.
    pub start: SimTime,
    /// When the user releases the resource.
    pub end: SimTime,
    /// Time spent waiting behind earlier users (`start - requested_at`).
    pub queued: SimDuration,
}

impl BusyResource {
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserve the resource for `hold`, starting no earlier than `at`.
    pub fn acquire(&self, at: SimTime, hold: SimDuration) -> Grant {
        let mut free = self.free_at_ns.load(Ordering::Acquire);
        loop {
            let start = free.max(at.0);
            let end = start + hold.0;
            match self.free_at_ns.compare_exchange_weak(
                free,
                end,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.busy_total_ns.fetch_add(hold.0, Ordering::Relaxed);
                    self.grants.fetch_add(1, Ordering::Relaxed);
                    return Grant {
                        start: SimTime(start),
                        end: SimTime(end),
                        queued: SimDuration(start - at.0),
                    };
                }
                Err(actual) => free = actual,
            }
        }
    }

    /// The earliest time a new user could start.
    pub fn free_at(&self) -> SimTime {
        SimTime(self.free_at_ns.load(Ordering::Acquire))
    }

    /// Cumulative time the resource has been held.
    pub fn busy_total(&self) -> SimDuration {
        SimDuration(self.busy_total_ns.load(Ordering::Relaxed))
    }

    /// Number of grants handed out.
    pub fn grant_count(&self) -> u64 {
        self.grants.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.free_at_ns.store(0, Ordering::Release);
        self.busy_total_ns.store(0, Ordering::Relaxed);
        self.grants.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn clock_monotonic_advance() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        let t1 = c.advance(SimDuration(100));
        assert_eq!(t1, SimTime(100));
        assert_eq!(c.now(), SimTime(100));
    }

    #[test]
    fn clock_observe_is_monotonic_max() {
        let c = VirtualClock::new();
        c.advance(SimDuration(500));
        // Observing the past does not rewind.
        assert_eq!(c.observe(SimTime(100)), SimTime(500));
        // Observing the future moves the clock.
        assert_eq!(c.observe(SimTime(900)), SimTime(900));
        assert_eq!(c.now(), SimTime(900));
    }

    #[test]
    fn busy_resource_serializes_overlapping_grants() {
        let r = BusyResource::new();
        let g1 = r.acquire(SimTime(0), SimDuration(100));
        assert_eq!(g1.start, SimTime(0));
        assert_eq!(g1.end, SimTime(100));
        assert_eq!(g1.queued, SimDuration::ZERO);

        // Second request arrives at t=10 but must queue until t=100.
        let g2 = r.acquire(SimTime(10), SimDuration(50));
        assert_eq!(g2.start, SimTime(100));
        assert_eq!(g2.end, SimTime(150));
        assert_eq!(g2.queued, SimDuration(90));

        // A request arriving after the resource is free starts immediately.
        let g3 = r.acquire(SimTime(400), SimDuration(10));
        assert_eq!(g3.start, SimTime(400));
        assert_eq!(g3.queued, SimDuration::ZERO);

        assert_eq!(r.busy_total(), SimDuration(160));
        assert_eq!(r.grant_count(), 3);
    }

    #[test]
    fn busy_resource_concurrent_grants_never_overlap() {
        let r = Arc::new(BusyResource::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                let mut grants = Vec::new();
                for _ in 0..200 {
                    grants.push(r.acquire(SimTime(0), SimDuration(7)));
                }
                grants
            }));
        }
        let mut all: Vec<Grant> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_by_key(|g| g.start);
        for pair in all.windows(2) {
            assert!(pair[0].end <= pair[1].start, "overlapping grants: {pair:?}");
        }
        assert_eq!(r.busy_total(), SimDuration(8 * 200 * 7));
    }
}

//! Per-request span recording.
//!
//! Every I/O request carries a [`Timeline`].  Components append labelled
//! [`Span`]s as the request traverses them; at completion the timeline's
//! total is the request's virtual latency and its spans are the breakdown
//! the paper reports in §IV-B ("93% of this overhead attributes to the
//! waiting scheme of vPHI inside the frontend driver").

use std::fmt;

use crate::units::SimDuration;

/// Which structural step a span was charged by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanLabel {
    // native SCIF path
    HostSyscall,
    ScifPost,
    DmaSetup,
    LinkLatency,
    LinkTransfer,
    LinkContention,
    DeviceDeliver,
    Completion,
    RmaSetup,
    CopyUserKernel,
    // paravirtual detour
    GuestSyscall,
    GuestKmalloc,
    GuestCopy,
    RingPush,
    VmExitKick,
    BackendDecode,
    GuestBufMap,
    PageTranslate,
    /// Backend registration-cache probe on the RMA path (hit or miss).
    RegCacheLookup,
    /// Backend zero-copy RMA: pin one huge page of a registered window
    /// and install its device-aperture mapping (cold path only).
    WindowPin,
    /// Backend zero-copy RMA: build the scatter-gather descriptor list
    /// over the mapped subwindows (paid on every zero-copy request).
    SgBuild,
    UsedPush,
    IrqInject,
    GuestWakeup,
    PollWait,
    WorkerSpawn,
    PfnFaultResolve,
    // device side
    UosSchedule,
    UosContextSwitch,
    CoiControl,
    DeviceSpawn,
    DeviceCompute,
    /// Anything not covered above (used by tests and extensions).
    Other(u32),
}

impl SpanLabel {
    /// True for spans introduced by virtualization — everything a native
    /// (host) execution of the same request would not pay.
    pub fn is_virtualization_overhead(self) -> bool {
        matches!(
            self,
            SpanLabel::GuestSyscall
                | SpanLabel::GuestKmalloc
                | SpanLabel::GuestCopy
                | SpanLabel::RingPush
                | SpanLabel::VmExitKick
                | SpanLabel::BackendDecode
                | SpanLabel::GuestBufMap
                | SpanLabel::PageTranslate
                | SpanLabel::RegCacheLookup
                | SpanLabel::WindowPin
                | SpanLabel::SgBuild
                | SpanLabel::UsedPush
                | SpanLabel::IrqInject
                | SpanLabel::GuestWakeup
                | SpanLabel::PollWait
                | SpanLabel::WorkerSpawn
                | SpanLabel::PfnFaultResolve
        )
    }
}

impl fmt::Display for SpanLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One labelled charge of virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub label: SpanLabel,
    pub duration: SimDuration,
}

/// An ordered record of the spans charged to one request.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    spans: Vec<Span>,
}

impl Timeline {
    pub fn new() -> Self {
        Timeline { spans: Vec::new() }
    }

    /// Pre-size for a known span count (hot-path requests charge ~12 spans).
    pub fn with_capacity(n: usize) -> Self {
        Timeline { spans: Vec::with_capacity(n) }
    }

    /// Charge `duration` under `label`.  Zero-duration charges are dropped
    /// to keep breakdowns readable.
    pub fn charge(&mut self, label: SpanLabel, duration: SimDuration) {
        if !duration.is_zero() {
            self.spans.push(Span { label, duration });
        }
    }

    /// Append all spans of `other` (used when a sub-path, e.g. the host
    /// SCIF call made by the backend, returns its own timeline).
    pub fn absorb(&mut self, other: &Timeline) {
        self.spans.extend_from_slice(&other.spans);
    }

    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total virtual time across all spans — the request's latency.
    pub fn total(&self) -> SimDuration {
        self.spans.iter().map(|s| s.duration).sum()
    }

    /// Total charged under one label.
    pub fn total_for(&self, label: SpanLabel) -> SimDuration {
        self.spans.iter().filter(|s| s.label == label).map(|s| s.duration).sum()
    }

    /// Total charged to virtualization-overhead labels.
    pub fn virtualization_overhead(&self) -> SimDuration {
        self.spans.iter().filter(|s| s.label.is_virtualization_overhead()).map(|s| s.duration).sum()
    }

    /// Collapse to `(label, total)` pairs in first-appearance order.
    pub fn breakdown(&self) -> Vec<(SpanLabel, SimDuration)> {
        let mut out: Vec<(SpanLabel, SimDuration)> = Vec::new();
        for s in &self.spans {
            match out.iter_mut().find(|(l, _)| *l == s.label) {
                Some((_, d)) => *d += s.duration,
                None => out.push((s.label, s.duration)),
            }
        }
        out
    }

    pub fn clear(&mut self) {
        self.spans.clear();
    }
}

impl fmt::Display for Timeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "timeline total={}", self.total())?;
        for (label, d) in self.breakdown() {
            let pct = if self.total().is_zero() {
                0.0
            } else {
                100.0 * d.as_nanos() as f64 / self.total().as_nanos() as f64
            };
            writeln!(f, "  {label:<18} {d:>12} ({pct:5.1}%)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn charge_and_total() {
        let mut t = Timeline::new();
        t.charge(SpanLabel::HostSyscall, us(1));
        t.charge(SpanLabel::LinkTransfer, us(5));
        t.charge(SpanLabel::HostSyscall, us(1));
        assert_eq!(t.total(), us(7));
        assert_eq!(t.total_for(SpanLabel::HostSyscall), us(2));
        assert_eq!(t.total_for(SpanLabel::IrqInject), SimDuration::ZERO);
        assert_eq!(t.spans().len(), 3);
    }

    #[test]
    fn zero_charges_are_dropped() {
        let mut t = Timeline::new();
        t.charge(SpanLabel::RingPush, SimDuration::ZERO);
        assert!(t.is_empty());
    }

    #[test]
    fn breakdown_merges_labels_in_order() {
        let mut t = Timeline::new();
        t.charge(SpanLabel::RingPush, us(1));
        t.charge(SpanLabel::IrqInject, us(2));
        t.charge(SpanLabel::RingPush, us(3));
        let b = t.breakdown();
        assert_eq!(b, vec![(SpanLabel::RingPush, us(4)), (SpanLabel::IrqInject, us(2))]);
    }

    #[test]
    fn absorb_concatenates() {
        let mut a = Timeline::new();
        a.charge(SpanLabel::GuestSyscall, us(1));
        let mut b = Timeline::new();
        b.charge(SpanLabel::HostSyscall, us(2));
        a.absorb(&b);
        assert_eq!(a.total(), us(3));
    }

    #[test]
    fn overhead_classification() {
        let mut t = Timeline::new();
        t.charge(SpanLabel::HostSyscall, us(7)); // native work
        t.charge(SpanLabel::GuestWakeup, us(349)); // virtualization
        t.charge(SpanLabel::VmExitKick, us(26)); // virtualization
        assert_eq!(t.virtualization_overhead(), us(375));
        assert_eq!(t.total(), us(382));
        assert!(SpanLabel::GuestWakeup.is_virtualization_overhead());
        assert!(SpanLabel::WindowPin.is_virtualization_overhead());
        assert!(SpanLabel::SgBuild.is_virtualization_overhead());
        assert!(!SpanLabel::LinkTransfer.is_virtualization_overhead());
    }

    #[test]
    fn display_contains_percentages() {
        let mut t = Timeline::new();
        t.charge(SpanLabel::LinkTransfer, us(50));
        t.charge(SpanLabel::DmaSetup, us(50));
        let s = t.to_string();
        assert!(s.contains("LinkTransfer"));
        assert!(s.contains("50.0%"));
    }
}

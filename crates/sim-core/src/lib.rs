//! # vphi-sim-core — virtual-time substrate for the vPHI reproduction
//!
//! The vPHI paper measures a real Xeon Phi 3120P behind a real PCIe gen2
//! link.  Neither exists on the machines this reproduction targets, so the
//! whole stack runs as a *functional* simulation: threads, rings and byte
//! movement are real, but **durations are virtual**.  This crate provides
//! the primitives every other crate charges time against:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-granularity virtual time.
//! * [`clock::VirtualClock`] — a global monotonic virtual clock plus
//!   [`clock::BusyResource`] for modelling contended serial resources
//!   (the PCIe link, the DMA engine).
//! * [`cost::CostModel`] — every structural cost in the system (vm-exit,
//!   interrupt injection, guest wake-up, per-page pin/translate, per-byte
//!   link time, …) as an explicit parameter.  The paper-calibrated preset
//!   reproduces the paper's native anchors (7 µs 1-byte latency,
//!   6.4 GB/s peak remote read).
//! * [`timeline::Timeline`] — a per-request span recorder.  As a request
//!   traverses frontend → virtio → backend → SCIF → DMA, each component
//!   appends labelled spans; the figure harness reads latency and
//!   breakdowns straight off the timeline.
//! * [`stats`] — small online-statistics helpers for the benchmark
//!   harness (mean, stddev, percentiles, throughput series).
//! * [`rng`] — a deterministic SplitMix64 generator so every experiment
//!   is reproducible bit-for-bit.

pub mod clock;
pub mod cost;
pub mod rng;
pub mod stats;
pub mod timeline;
pub mod units;

pub use clock::{BusyResource, VirtualClock};
pub use cost::CostModel;
pub use rng::SplitMix64;
pub use timeline::{Span, SpanLabel, Timeline};
pub use units::{SimDuration, SimTime, GIB, KIB, MIB};

//! Deterministic pseudo-random numbers.
//!
//! Experiments must be reproducible bit-for-bit, so workload generators use
//! this seeded SplitMix64 instead of OS entropy.  (The `rand` crate is used
//! elsewhere for trait-based integration; this generator is for the inner
//! loops where we want a guaranteed stable stream across `rand` versions.)

/// SplitMix64 — tiny, fast, and passes BigCrush; ideal for seeding and for
/// reproducible workload generation.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.  Uses Lemire's
    /// multiply-shift rejection method to avoid modulo bias.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let m = (x as u128) * (bound as u128);
                ((m >> 64) as u64, m as u64)
            };
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return hi;
            }
        }
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fill a byte buffer with reproducible noise.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bounded_values_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.next_below(13) < 13);
        }
    }

    #[test]
    fn bounded_values_cover_range() {
        let mut r = SplitMix64::new(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear: {seen:?}");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fill_bytes_deterministic_and_complete() {
        let mut a = SplitMix64::new(5);
        let mut b = SplitMix64::new(5);
        let mut ba = [0u8; 37];
        let mut bb = [0u8; 37];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba, bb);
        // Statistically improbable to be all zero.
        assert!(ba.iter().any(|&x| x != 0));
    }
}

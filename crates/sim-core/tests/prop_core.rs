//! Property-based tests of the virtual-time substrate.

use proptest::prelude::*;

use vphi_sim_core::stats::{jain_fairness, percentile, OnlineStats};
use vphi_sim_core::{SimDuration, SimTime, SpanLabel, SplitMix64, Timeline};

proptest! {
    // ----------------------------------------------------------- durations

    #[test]
    fn duration_addition_is_commutative_and_associative(a: u32, b: u32, c: u32) {
        let (a, b, c) =
            (SimDuration(a as u64), SimDuration(b as u64), SimDuration(c as u64));
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn saturating_sub_never_underflows(a: u64, b: u64) {
        let d = SimDuration(a).saturating_sub(SimDuration(b));
        prop_assert_eq!(d.as_nanos(), a.saturating_sub(b));
    }

    #[test]
    fn elapsed_since_is_antisymmetric(a: u64, b: u64) {
        let (ta, tb) = (SimTime(a), SimTime(b));
        let fwd = tb.elapsed_since(ta);
        let back = ta.elapsed_since(tb);
        // At most one direction is nonzero, and they reconstruct |a-b|.
        prop_assert!(fwd.is_zero() || back.is_zero());
        prop_assert_eq!(fwd.as_nanos() + back.as_nanos(), a.abs_diff(b));
    }

    // ----------------------------------------------------------- timelines

    #[test]
    fn timeline_total_equals_sum_of_spans(charges in prop::collection::vec(0u64..1_000_000, 0..50)) {
        let mut tl = Timeline::new();
        for (i, c) in charges.iter().enumerate() {
            let label = if i % 2 == 0 { SpanLabel::LinkTransfer } else { SpanLabel::GuestWakeup };
            tl.charge(label, SimDuration(*c));
        }
        prop_assert_eq!(tl.total(), SimDuration(charges.iter().sum()));
        // Breakdown partitions the total.
        let breakdown_sum: SimDuration = tl.breakdown().into_iter().map(|(_, d)| d).sum();
        prop_assert_eq!(breakdown_sum, tl.total());
        // total_for over both labels also partitions it.
        let by_label = tl.total_for(SpanLabel::LinkTransfer)
            + tl.total_for(SpanLabel::GuestWakeup);
        prop_assert_eq!(by_label, tl.total());
    }

    #[test]
    fn absorb_is_additive(a in prop::collection::vec(0u64..1_000, 0..20),
                          b in prop::collection::vec(0u64..1_000, 0..20)) {
        let mut ta = Timeline::new();
        for c in &a {
            ta.charge(SpanLabel::HostSyscall, SimDuration(*c));
        }
        let mut tb = Timeline::new();
        for c in &b {
            tb.charge(SpanLabel::IrqInject, SimDuration(*c));
        }
        let (ta_total, tb_total) = (ta.total(), tb.total());
        ta.absorb(&tb);
        prop_assert_eq!(ta.total(), ta_total + tb_total);
    }

    // ----------------------------------------------------------- statistics

    #[test]
    fn online_stats_mean_is_bounded(xs in prop::collection::vec(-1e12f64..1e12, 1..100)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        prop_assert!(s.mean() >= s.min() - 1e-6);
        prop_assert!(s.mean() <= s.max() + 1e-6);
        prop_assert!(s.stddev() >= 0.0);
        prop_assert_eq!(s.count(), xs.len() as u64);
    }

    #[test]
    fn percentile_is_monotone_and_within_range(
        mut xs in prop::collection::vec(-1e9f64..1e9, 1..200),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        let v_lo = percentile(&mut xs, lo);
        let v_hi = percentile(&mut xs, hi);
        prop_assert!(v_lo <= v_hi, "percentile not monotone: p{lo}={v_lo} > p{hi}={v_hi}");
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v_lo >= min && v_hi <= max);
    }

    #[test]
    fn jain_fairness_in_unit_interval(xs in prop::collection::vec(0.0f64..1e9, 1..50)) {
        let f = jain_fairness(&xs);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&f), "fairness = {f}");
        // 1/n lower bound for non-degenerate inputs.
        if xs.iter().any(|&x| x > 0.0) {
            prop_assert!(f >= 1.0 / xs.len() as f64 - 1e-12);
        }
    }

    // ------------------------------------------------------------------ rng

    #[test]
    fn rng_bounded_draws_stay_in_bounds(seed: u64, bound in 1u64..1_000_000) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..200 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }

    #[test]
    fn rng_fill_is_a_function_of_the_seed(seed: u64, n in 0usize..500) {
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        let mut ba = vec![0u8; n];
        let mut bb = vec![0u8; n];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        prop_assert_eq!(ba, bb);
    }
}

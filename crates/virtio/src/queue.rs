//! The split virtqueue.
//!
//! One lock protects the descriptor table, avail ring, used ring and the
//! free-descriptor list.  Guest-side and device-side APIs are both on
//! [`VirtQueue`]; in the vPHI stack the frontend driver holds the guest
//! side and the QEMU backend the device side of the *same* queue — a
//! shared-memory structure, exactly as in Fig. 2 of the paper.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use vphi_faults::{FaultHook, FaultSite};
use vphi_pcie::Doorbell;
use vphi_sim_core::{SpanLabel, Timeline};
use vphi_sync::{LockClass, TrackedMutex};

use crate::ring::{DescChain, Descriptor, UsedElem};

/// Errors from queue operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueError {
    /// Not enough free descriptors for the chain.
    NoSpace,
    /// An empty chain was submitted.
    EmptyChain,
    /// A descriptor index was out of range or the chain was corrupt.
    Corrupt,
}

impl std::fmt::Display for QueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueError::NoSpace => write!(f, "virtqueue descriptor table full"),
            QueueError::EmptyChain => write!(f, "empty descriptor chain"),
            QueueError::Corrupt => write!(f, "corrupt descriptor chain"),
        }
    }
}

impl std::error::Error for QueueError {}

/// Kick plumbing shared by the two sides.  Device → guest notification
/// is NOT here by design: used-buffer interrupts go through the backend's
/// `LaneNotifier`, the one component allowed to inject MSIs, so the
/// EVENT_IDX suppression decision has a single owner.
pub struct Notifiers {
    /// Guest → device "avail ring has work".
    pub kick: Arc<Doorbell>,
}

impl Default for Notifiers {
    fn default() -> Self {
        Notifiers { kick: Arc::new(Doorbell::new()) }
    }
}

impl std::fmt::Debug for Notifiers {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Notifiers").finish_non_exhaustive()
    }
}

#[derive(Debug)]
struct QueueState {
    table: Vec<Option<Descriptor>>,
    free: Vec<u16>,
    avail: VecDeque<u16>,
    used: VecDeque<UsedElem>,
    /// `VRING_USED_F_NO_NOTIFY`: device asks the guest not to kick.
    suppress_kick: bool,
}

impl QueueState {
    /// Bounds-check a guest-controlled descriptor index (`avail` head,
    /// `next` link, used-elem `id`) before it addresses the table.  Ring
    /// memory is guest-writable, so every index read from it goes through
    /// here.
    fn idx(&self, i: u16) -> Result<usize, QueueError> {
        let i = i as usize;
        if i < self.table.len() {
            Ok(i)
        } else {
            Err(QueueError::Corrupt)
        }
    }
}

/// Monotonic per-queue counters (multi-queue debugfs rows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueCounters {
    /// Kicks actually delivered (not suppressed).
    pub kicks: u64,
    /// Chains popped off the avail ring by the device side.
    pub chains_popped: u64,
    /// Kick-suppression windows opened (false → true transitions).
    pub suppress_windows: u64,
}

/// A split virtqueue of `size` descriptors.
pub struct VirtQueue {
    size: u16,
    state: TrackedMutex<QueueState>,
    pub notifiers: Notifiers,
    faults: FaultHook,
    kicks: AtomicU64,
    chains_popped: AtomicU64,
    suppress_windows: AtomicU64,
    /// Monotonic count of used-ring pushes (the EVENT_IDX "new" index).
    used_seq: AtomicU64,
    /// Guest-published interrupt threshold (`VIRTIO_F_EVENT_IDX`): the
    /// device need only interrupt when `used_seq` crosses this value.
    used_event: AtomicU64,
}

impl std::fmt::Debug for VirtQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtQueue").field("size", &self.size).finish()
    }
}

impl VirtQueue {
    pub fn new(size: u16) -> Arc<Self> {
        assert!(size > 0 && size.is_power_of_two(), "queue size must be a power of two");
        Arc::new(VirtQueue {
            size,
            state: TrackedMutex::new(
                LockClass::VirtQueueState,
                QueueState {
                    table: vec![None; size as usize],
                    free: (0..size).rev().collect(),
                    avail: VecDeque::new(),
                    used: VecDeque::new(),
                    suppress_kick: false,
                },
            ),
            notifiers: Notifiers::default(),
            faults: FaultHook::new(),
            kicks: AtomicU64::new(0),
            chains_popped: AtomicU64::new(0),
            suppress_windows: AtomicU64::new(0),
            used_seq: AtomicU64::new(0),
            used_event: AtomicU64::new(0),
        })
    }

    /// Snapshot of this queue's monotonic counters.
    pub fn counters(&self) -> QueueCounters {
        QueueCounters {
            kicks: self.kicks.load(Ordering::Relaxed),
            chains_popped: self.chains_popped.load(Ordering::Relaxed),
            suppress_windows: self.suppress_windows.load(Ordering::Relaxed),
        }
    }

    pub fn size(&self) -> u16 {
        self.size
    }

    /// Fault-injection arming point (lost kicks, delayed used pushes).
    pub fn fault_hook(&self) -> &FaultHook {
        &self.faults
    }

    pub fn free_descriptors(&self) -> usize {
        self.state.lock().free.len()
    }

    // ---- guest (driver) side ----------------------------------------------

    /// Post a chain on the avail ring; returns the head index.  Charges
    /// the `RingPush` cost.  The caller kicks separately via
    /// [`kick`](VirtQueue::kick) so batching is possible.
    pub fn add_chain(
        &self,
        descriptors: &[Descriptor],
        cost_ring_push: vphi_sim_core::SimDuration,
        tl: &mut Timeline,
    ) -> Result<u16, QueueError> {
        let head = self.prepare_chain(descriptors)?;
        self.publish_avail(head, cost_ring_push, tl);
        Ok(head)
    }

    /// Write a chain into the descriptor table *without* exposing it on
    /// the avail ring; returns the head index.  Real virtio drivers order
    /// their stores the same way — descriptor table first, avail-ring
    /// entry last — because the device may consume a published head
    /// instantly.  A driver that must register per-request bookkeeping
    /// keyed by the head (the vPHI channel's inflight table) does so
    /// between this call and [`publish_avail`](VirtQueue::publish_avail);
    /// publishing first races a device woken by *another* thread's kick.
    pub fn prepare_chain(&self, descriptors: &[Descriptor]) -> Result<u16, QueueError> {
        if descriptors.is_empty() {
            return Err(QueueError::EmptyChain);
        }
        let mut st = self.state.lock();
        if st.free.len() < descriptors.len() {
            return Err(QueueError::NoSpace);
        }
        let at = st.free.len() - descriptors.len();
        let mut indices = st.free.split_off(at);
        indices.reverse(); // allocate in the stack's pop order
        for (i, (&idx, desc)) in indices.iter().zip(descriptors).enumerate() {
            let mut d = *desc;
            if i + 1 < indices.len() {
                d.flags.next = true;
                d.next = indices[i + 1];
            } else {
                d.flags.next = false;
            }
            st.table[idx as usize] = Some(d);
        }
        Ok(indices[0])
    }

    /// Expose a prepared chain on the avail ring and charge the
    /// `RingPush` cost.  From this point the device side can pop it.
    pub fn publish_avail(
        &self,
        head: u16,
        cost_ring_push: vphi_sim_core::SimDuration,
        tl: &mut Timeline,
    ) {
        self.publish_avail_batch(&[head], cost_ring_push, tl);
    }

    /// Expose a whole batch of prepared chains on the avail ring under one
    /// lock acquisition, in order.  Each entry is an avail-ring store and
    /// charges its own `RingPush`; what the batch amortizes is the
    /// *doorbell* — the caller follows up with a single
    /// [`kick`](VirtQueue::kick) for all of them, one vm-exit instead of
    /// N.  The device side may start popping published heads the moment
    /// the lock drops, so per-head bookkeeping must already be registered.
    pub fn publish_avail_batch(
        &self,
        heads: &[u16],
        cost_ring_push: vphi_sim_core::SimDuration,
        tl: &mut Timeline,
    ) {
        {
            let mut st = self.state.lock();
            for &head in heads {
                st.avail.push_back(head);
            }
        }
        for _ in heads {
            tl.charge(SpanLabel::RingPush, cost_ring_push);
        }
    }

    /// Notify the device (one vm-exit unless suppressed).  Returns whether
    /// a kick was actually delivered.
    pub fn kick(&self, cost_vmexit: vphi_sim_core::SimDuration, tl: &mut Timeline) -> bool {
        let suppressed = self.state.lock().suppress_kick;
        if suppressed {
            return false;
        }
        tl.charge(SpanLabel::VmExitKick, cost_vmexit);
        // An injected lost kick pays the vm-exit but never reaches the
        // device; the frontend's request deadline re-kicks.
        self.kicks.fetch_add(1, Ordering::Relaxed);
        if self.faults.fire(FaultSite::VirtioKickLost).is_some() {
            return true;
        }
        self.notifiers.kick.ring();
        true
    }

    /// Drain completed chains from the used ring, releasing their
    /// descriptors.  An out-of-range `id` or `next` link is guest-visible
    /// ring corruption; a missing (already freed) entry just stops that
    /// chain's walk.
    pub fn take_used(&self) -> Result<Vec<UsedElem>, QueueError> {
        let mut st = self.state.lock();
        let drained: Vec<UsedElem> = st.used.drain(..).collect();
        for u in &drained {
            let mut i = st.idx(u.id)?;
            while let Some(d) = st.table[i].take() {
                st.free.push(i as u16);
                if d.flags.next {
                    i = st.idx(d.next)?;
                } else {
                    break;
                }
            }
        }
        Ok(drained)
    }

    /// Whether completions are waiting.
    pub fn used_pending(&self) -> bool {
        !self.state.lock().used.is_empty()
    }

    /// Publish the guest's interrupt threshold (`VIRTIO_F_EVENT_IDX`
    /// `used_event`).  A waiter about to sleep stores the used index it
    /// has already observed; the device interrupts only when a push
    /// *crosses* it.  `SeqCst` pairs with the device's `SeqCst` load in
    /// [`push_used`](VirtQueue::push_used): either the device sees the
    /// threshold (and interrupts), or the waiter's pre-sleep recheck sees
    /// the completion — the "suppressed but sleeping" race cannot happen
    /// (DESIGN.md #16).
    pub fn publish_used_event(&self, used_event: u64) {
        self.used_event.store(used_event, Ordering::SeqCst);
    }

    /// The used index the guest last armed an interrupt for.
    pub fn used_event(&self) -> u64 {
        self.used_event.load(Ordering::SeqCst)
    }

    /// Monotonic count of completions pushed onto the used ring.
    pub fn used_seq(&self) -> u64 {
        self.used_seq.load(Ordering::SeqCst)
    }

    // ---- device (backend) side ---------------------------------------------

    /// Pop the next available chain, resolving its descriptors.
    pub fn pop_avail(&self) -> Result<Option<DescChain>, QueueError> {
        let mut st = self.state.lock();
        let head = match st.avail.pop_front() {
            Some(h) => h,
            None => return Ok(None),
        };
        self.chains_popped.fetch_add(1, Ordering::Relaxed);
        let mut descriptors = Vec::new();
        let mut idx = head;
        loop {
            let i = st.idx(idx)?;
            let d = st.table[i].ok_or(QueueError::Corrupt)?;
            descriptors.push(d);
            if descriptors.len() > self.size as usize {
                return Err(QueueError::Corrupt); // cycle guard
            }
            if d.flags.next {
                idx = d.next;
            } else {
                break;
            }
        }
        Ok(Some(DescChain { head, descriptors }))
    }

    /// Whether undelivered chains sit on the avail ring.  The backend
    /// re-checks this after lifting kick suppression: a chain posted in
    /// the suppressed window never delivered its kick.
    pub fn avail_pending(&self) -> bool {
        !self.state.lock().avail.is_empty()
    }

    /// Block (really) until a kick arrives or the queue shuts down.
    pub fn wait_kick(&self) -> bool {
        self.notifiers.kick.wait()
    }

    /// Push a completion and fire the guest interrupt unless suppressed.
    /// Charges `UsedPush` (and the IRQ callback charges its own spans).
    /// Returns the queue's new used index; callers running the EVENT_IDX
    /// protocol compare it against [`used_event`](VirtQueue::used_event)
    /// with [`need_event`] to decide whether an interrupt is due.  The
    /// `used_seq` bump is `SeqCst` so it is ordered after the elem becomes
    /// visible and pairs with the waiter's pre-sleep threshold publish.
    pub fn push_used(
        &self,
        elem: UsedElem,
        cost_used_push: vphi_sim_core::SimDuration,
        tl: &mut Timeline,
    ) -> u64 {
        self.state.lock().used.push_back(elem);
        let new_seq = self.used_seq.fetch_add(1, Ordering::SeqCst) + 1;
        tl.charge(SpanLabel::UsedPush, cost_used_push);
        // An injected used-ring delay holds the completion for `param` µs
        // before the interrupt path runs.
        if let Some(delay_us) = self.faults.fire(FaultSite::VirtioUsedDelay) {
            tl.charge(SpanLabel::UsedPush, vphi_sim_core::SimDuration::from_micros(delay_us));
        }
        new_seq
    }

    /// Device-side kick suppression.
    pub fn set_suppress_kick(&self, suppress: bool) {
        let mut st = self.state.lock();
        if suppress && !st.suppress_kick {
            self.suppress_windows.fetch_add(1, Ordering::Relaxed);
        }
        st.suppress_kick = suppress;
    }

    /// Shut the queue down: wakes any device thread blocked in
    /// [`wait_kick`](VirtQueue::wait_kick).
    pub fn shutdown(&self) {
        self.notifiers.kick.shutdown();
    }
}

/// The virtio-1.x EVENT_IDX predicate (`vring_need_event`): whether moving
/// the used index from `old` to `new` crossed the guest-armed `event`
/// threshold.  All arithmetic is wrapping, so the comparison is correct
/// across index wrap-around.  For a single push (`old == new - 1`) this
/// reduces to `new == event + 1`: interrupt exactly when the push lands on
/// the index the guest said it was waiting past.
pub fn need_event(event: u64, new: u64, old: u64) -> bool {
    new.wrapping_sub(event).wrapping_sub(1) < new.wrapping_sub(old)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::DescFlags;
    use vphi_sim_core::SimDuration;

    const PUSH: SimDuration = SimDuration::from_nanos(650);
    const KICK: SimDuration = SimDuration::from_nanos(10_500);

    #[test]
    fn add_pop_push_take_lifecycle() {
        let q = VirtQueue::new(8);
        let mut tl = Timeline::new();
        let head = q
            .add_chain(
                &[Descriptor::readable(0x1000, 64), Descriptor::writable(0x2000, 64)],
                PUSH,
                &mut tl,
            )
            .unwrap();
        assert_eq!(q.free_descriptors(), 6);

        let chain = q.pop_avail().unwrap().unwrap();
        assert_eq!(chain.head, head);
        assert_eq!(chain.descriptors.len(), 2);
        assert_eq!(chain.readable().count(), 1);
        assert_eq!(chain.writable().count(), 1);
        // Chain linkage was fixed up by add_chain.
        assert!(chain.descriptors[0].flags.next);
        assert!(!chain.descriptors[1].flags.next);

        q.push_used(UsedElem { id: head, len: 64 }, PUSH, &mut tl);
        assert!(q.used_pending());
        let used = q.take_used().unwrap();
        assert_eq!(used, vec![UsedElem { id: head, len: 64 }]);
        assert_eq!(q.free_descriptors(), 8);
        assert!(!q.used_pending());
    }

    #[test]
    fn empty_and_full_conditions() {
        let q = VirtQueue::new(2);
        let mut tl = Timeline::new();
        assert_eq!(q.pop_avail().unwrap(), None);
        assert_eq!(q.add_chain(&[], PUSH, &mut tl), Err(QueueError::EmptyChain));
        q.add_chain(&[Descriptor::readable(0, 1), Descriptor::readable(0, 1)], PUSH, &mut tl)
            .unwrap();
        assert_eq!(
            q.add_chain(&[Descriptor::readable(0, 1)], PUSH, &mut tl),
            Err(QueueError::NoSpace)
        );
    }

    #[test]
    fn kick_wakes_device_thread() {
        let q = VirtQueue::new(4);
        let q2 = Arc::clone(&q);
        let dev = std::thread::spawn(move || q2.wait_kick());
        let mut tl = Timeline::new();
        q.add_chain(&[Descriptor::readable(0, 4)], PUSH, &mut tl).unwrap();
        assert!(q.kick(KICK, &mut tl));
        assert!(dev.join().unwrap());
        assert_eq!(tl.total_for(SpanLabel::VmExitKick), KICK);
    }

    #[test]
    fn push_used_queues_the_completion_without_a_side_channel() {
        // No interrupt fires here by construction: the queue has no
        // notification callback at all — delivery is the LaneNotifier's
        // decision, made from `used_seq` and `used_event` alone.
        let q = VirtQueue::new(4);
        let mut tl = Timeline::new();
        let head = q.add_chain(&[Descriptor::readable(0, 1)], PUSH, &mut tl).unwrap();
        q.pop_avail().unwrap().unwrap();
        let seq = q.push_used(UsedElem { id: head, len: 0 }, PUSH, &mut tl);
        assert_eq!(seq, 1);
        assert!(q.used_pending());
        assert_eq!(q.used_seq(), 1);
    }

    #[test]
    fn kick_suppression() {
        let q = VirtQueue::new(4);
        q.set_suppress_kick(true);
        let mut tl = Timeline::new();
        assert!(!q.kick(KICK, &mut tl));
        assert_eq!(tl.total(), SimDuration::ZERO);
    }

    #[test]
    fn prepared_chain_is_invisible_until_published() {
        let q = VirtQueue::new(4);
        let mut tl = Timeline::new();
        let head = q.prepare_chain(&[Descriptor::readable(0, 8)]).unwrap();
        // Descriptors are allocated but the device side sees nothing —
        // the window where the driver registers head-keyed bookkeeping.
        assert_eq!(q.free_descriptors(), 3);
        assert!(!q.avail_pending());
        assert!(q.pop_avail().unwrap().is_none());
        assert_eq!(tl.total(), SimDuration::ZERO);
        q.publish_avail(head, PUSH, &mut tl);
        assert_eq!(q.pop_avail().unwrap().unwrap().head, head);
        assert_eq!(tl.total(), PUSH);
    }

    #[test]
    fn batch_publish_preserves_order_and_charges_per_entry() {
        let q = VirtQueue::new(8);
        let mut tl = Timeline::new();
        let h1 = q.prepare_chain(&[Descriptor::readable(0x1, 1)]).unwrap();
        let h2 = q.prepare_chain(&[Descriptor::readable(0x2, 1)]).unwrap();
        let h3 = q.prepare_chain(&[Descriptor::readable(0x3, 1)]).unwrap();
        assert!(!q.avail_pending());
        q.publish_avail_batch(&[h1, h2, h3], PUSH, &mut tl);
        // One ring store per entry — the batch amortizes the kick, not
        // the avail-ring traffic.
        assert_eq!(tl.total_for(SpanLabel::RingPush), PUSH * 3);
        assert_eq!(q.pop_avail().unwrap().unwrap().head, h1);
        assert_eq!(q.pop_avail().unwrap().unwrap().head, h2);
        assert_eq!(q.pop_avail().unwrap().unwrap().head, h3);
    }

    #[test]
    fn multiple_chains_fifo_order() {
        let q = VirtQueue::new(8);
        let mut tl = Timeline::new();
        let h1 = q.add_chain(&[Descriptor::readable(0x1, 1)], PUSH, &mut tl).unwrap();
        let h2 = q.add_chain(&[Descriptor::readable(0x2, 1)], PUSH, &mut tl).unwrap();
        assert_eq!(q.pop_avail().unwrap().unwrap().head, h1);
        assert_eq!(q.pop_avail().unwrap().unwrap().head, h2);
    }

    #[test]
    fn descriptors_recycle_across_many_rounds() {
        let q = VirtQueue::new(4);
        let mut tl = Timeline::new();
        for round in 0..100 {
            let head = q
                .add_chain(
                    &[Descriptor::readable(round, 8), Descriptor::writable(round, 8)],
                    PUSH,
                    &mut tl,
                )
                .unwrap();
            let chain = q.pop_avail().unwrap().unwrap();
            assert_eq!(chain.head, head);
            q.push_used(UsedElem { id: head, len: 8 }, PUSH, &mut tl);
            assert_eq!(q.take_used().unwrap().len(), 1);
            assert_eq!(q.free_descriptors(), 4);
        }
    }

    #[test]
    fn caller_supplied_flags_do_not_break_chaining() {
        // Even if the caller pre-sets NEXT on the last descriptor,
        // add_chain normalizes linkage.
        let q = VirtQueue::new(8);
        let mut tl = Timeline::new();
        let mut d = Descriptor::readable(0x9, 9);
        d.flags = DescFlags::NEXT;
        d.next = 77; // garbage
        q.add_chain(&[d], PUSH, &mut tl).unwrap();
        let chain = q.pop_avail().unwrap().unwrap();
        assert_eq!(chain.descriptors.len(), 1);
        assert!(!chain.descriptors[0].flags.next);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_size_rejected() {
        VirtQueue::new(3);
    }

    #[test]
    fn used_seq_counts_pushes_and_used_event_round_trips() {
        let q = VirtQueue::new(8);
        let mut tl = Timeline::new();
        assert_eq!(q.used_seq(), 0);
        assert_eq!(q.used_event(), 0);
        let h1 = q.add_chain(&[Descriptor::readable(0x1, 1)], PUSH, &mut tl).unwrap();
        q.pop_avail().unwrap().unwrap();
        assert_eq!(q.push_used(UsedElem { id: h1, len: 0 }, PUSH, &mut tl), 1);
        q.take_used().unwrap();
        q.publish_used_event(1);
        assert_eq!(q.used_event(), 1);
        let h2 = q.add_chain(&[Descriptor::readable(0x2, 1)], PUSH, &mut tl).unwrap();
        q.pop_avail().unwrap().unwrap();
        let seq = q.push_used(UsedElem { id: h2, len: 0 }, PUSH, &mut tl);
        assert_eq!(seq, 2);
        assert_eq!(q.used_seq(), 2);
        // The second push crossed the armed threshold of 1.
        assert!(need_event(q.used_event(), seq, seq - 1));
    }

    #[test]
    fn need_event_crossing_semantics() {
        // Single push: fires exactly when new == event + 1.
        assert!(need_event(4, 5, 4));
        assert!(!need_event(4, 4, 3)); // not there yet
        assert!(!need_event(4, 6, 5)); // already past — guest saw it awake

        // Batched push old..new: fires iff event ∈ [old, new).
        assert!(need_event(6, 9, 5));
        assert!(need_event(5, 9, 5));
        assert!(!need_event(9, 9, 5));
        assert!(!need_event(4, 9, 5));
        // Wrap-around stays correct.
        assert!(need_event(u64::MAX, 0, u64::MAX));
        assert!(!need_event(2, 0, u64::MAX));
    }

    #[test]
    fn per_queue_counters_track_kicks_pops_and_suppress_windows() {
        let q = VirtQueue::new(8);
        let mut tl = Timeline::new();
        assert_eq!(q.counters(), QueueCounters::default());
        let head = q.add_chain(&[Descriptor::readable(0, 1)], PUSH, &mut tl).unwrap();
        assert!(q.kick(KICK, &mut tl));
        q.pop_avail().unwrap().unwrap();
        q.push_used(UsedElem { id: head, len: 0 }, PUSH, &mut tl);
        q.take_used().unwrap();
        // A suppression window: opening counts once, re-asserting doesn't,
        // and a suppressed kick is not a delivered kick.
        q.set_suppress_kick(true);
        q.set_suppress_kick(true);
        assert!(!q.kick(KICK, &mut tl));
        q.set_suppress_kick(false);
        q.set_suppress_kick(true);
        q.set_suppress_kick(false);
        let c = q.counters();
        assert_eq!(c, QueueCounters { kicks: 1, chains_popped: 1, suppress_windows: 2 });
    }
}

//! # vphi-virtio — the split-virtqueue transport
//!
//! vPHI's frontend and backend communicate over a virtio ring (paper
//! §II-C, Fig. 2): the guest posts buffer *references* (guest-physical
//! addresses) into a shared ring and kicks the device; the backend pops
//! them, maps the referenced buffers, emulates the I/O, pushes a used
//! element and injects a virtual interrupt.  No payload bytes live in the
//! ring itself — that is the zero-copy property the paper leans on.
//!
//! This crate implements the classic *split* virtqueue:
//!
//! * [`ring::Descriptor`] / [`ring::DescChain`] — guest-physical buffer
//!   references with `NEXT`/`WRITE` chaining.
//! * [`queue::VirtQueue`] — the descriptor table + avail ring + used ring
//!   under one lock, with a guest-side API (`add_chain`, `take_used`) and
//!   a device-side API (`pop_avail`, `push_used`).
//! * [`queue::Notifiers`] — the kick doorbell (guest → device) and the
//!   used-buffer callback (device → guest interrupt), with the standard
//!   suppression flags.

pub mod queue;
pub mod ring;

pub use queue::{need_event, Notifiers, QueueCounters, QueueError, VirtQueue};
pub use ring::{DescChain, DescFlags, Descriptor, UsedElem};

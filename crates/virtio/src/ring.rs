//! Descriptor-table entries and chains.

/// Descriptor flags (`VRING_DESC_F_*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DescFlags {
    /// This descriptor continues into `next`.
    pub next: bool,
    /// Device-writable (a response buffer); otherwise device-readable.
    pub write: bool,
}

impl DescFlags {
    pub const NONE: DescFlags = DescFlags { next: false, write: false };
    pub const NEXT: DescFlags = DescFlags { next: true, write: false };
    pub const WRITE: DescFlags = DescFlags { next: false, write: true };
    pub const NEXT_WRITE: DescFlags = DescFlags { next: true, write: true };
}

/// One descriptor-table entry: a guest-physical buffer reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Descriptor {
    /// Guest-physical address of the buffer.
    pub addr: u64,
    /// Buffer length in bytes.
    pub len: u32,
    pub flags: DescFlags,
    /// Next descriptor index when `flags.next`.
    pub next: u16,
}

impl Descriptor {
    pub fn readable(addr: u64, len: u32) -> Self {
        Descriptor { addr, len, flags: DescFlags::NONE, next: 0 }
    }

    pub fn writable(addr: u64, len: u32) -> Self {
        Descriptor { addr, len, flags: DescFlags::WRITE, next: 0 }
    }
}

/// A popped chain, resolved into its ordered descriptors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DescChain {
    /// Head descriptor index — the id pushed back on the used ring.
    pub head: u16,
    pub descriptors: Vec<Descriptor>,
}

impl DescChain {
    /// Device-readable descriptors (the request).
    pub fn readable(&self) -> impl Iterator<Item = &Descriptor> {
        self.descriptors.iter().filter(|d| !d.flags.write)
    }

    /// Device-writable descriptors (the response area).
    pub fn writable(&self) -> impl Iterator<Item = &Descriptor> {
        self.descriptors.iter().filter(|d| d.flags.write)
    }

    pub fn total_len(&self) -> u64 {
        self.descriptors.iter().map(|d| d.len as u64).sum()
    }
}

/// A used-ring element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UsedElem {
    /// Head index of the completed chain.
    pub id: u16,
    /// Bytes the device wrote into the chain's writable descriptors.
    pub len: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn flag_presets() {
        assert!(DescFlags::NEXT.next && !DescFlags::NEXT.write);
        assert!(DescFlags::WRITE.write && !DescFlags::WRITE.next);
        assert!(DescFlags::NEXT_WRITE.next && DescFlags::NEXT_WRITE.write);
        assert_eq!(DescFlags::default(), DescFlags::NONE);
    }

    #[test]
    fn chain_partitions_by_direction() {
        let chain = DescChain {
            head: 3,
            descriptors: vec![
                Descriptor::readable(0x1000, 64),
                Descriptor::readable(0x2000, 128),
                Descriptor::writable(0x3000, 256),
            ],
        };
        assert_eq!(chain.readable().count(), 2);
        assert_eq!(chain.writable().count(), 1);
        assert_eq!(chain.total_len(), 64 + 128 + 256);
        assert_eq!(chain.writable().next().unwrap().addr, 0x3000);
    }
}

//! Property-based tests of the split virtqueue: descriptor accounting
//! never leaks, FIFO order holds, chains resolve exactly as posted.

use proptest::prelude::*;

use vphi_sim_core::{SimDuration, Timeline};
use vphi_virtio::{Descriptor, UsedElem, VirtQueue};

const PUSH: SimDuration = SimDuration::from_nanos(650);

#[derive(Debug, Clone)]
enum QOp {
    /// Post a chain of `n` descriptors (1..=4).
    Add(u8),
    /// Device: pop one chain.
    Pop,
    /// Device: complete the oldest popped chain.
    PushUsed,
    /// Guest: drain the used ring.
    TakeUsed,
}

fn arb_qops() -> impl Strategy<Value = Vec<QOp>> {
    prop::collection::vec(
        prop_oneof![
            (1u8..5).prop_map(QOp::Add),
            Just(QOp::Pop),
            Just(QOp::PushUsed),
            Just(QOp::TakeUsed),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn descriptor_accounting_never_leaks(ops in arb_qops()) {
        let size = 64u16;
        let q = VirtQueue::new(size);
        let mut tl = Timeline::new();

        // Model state.
        let mut posted: std::collections::VecDeque<(u16, usize)> = Default::default();
        let mut popped: std::collections::VecDeque<(u16, usize)> = Default::default();
        let mut used: Vec<(u16, usize)> = Vec::new();
        let mut free = size as usize;

        for op in ops {
            match op {
                QOp::Add(n) => {
                    let descs: Vec<Descriptor> = (0..n)
                        .map(|i| Descriptor::readable(0x1000 * (i as u64 + 1), 64))
                        .collect();
                    match q.add_chain(&descs, PUSH, &mut tl) {
                        Ok(head) => {
                            prop_assert!(free >= n as usize, "add succeeded beyond capacity");
                            free -= n as usize;
                            posted.push_back((head, n as usize));
                        }
                        Err(_) => {
                            prop_assert!(free < n as usize, "add failed with space available");
                        }
                    }
                }
                QOp::Pop => {
                    match q.pop_avail().unwrap() {
                        Some(chain) => {
                            let (head, n) = posted.pop_front().expect("model has a chain");
                            prop_assert_eq!(chain.head, head, "FIFO violated");
                            prop_assert_eq!(chain.descriptors.len(), n);
                            popped.push_back((head, n));
                        }
                        None => prop_assert!(posted.is_empty()),
                    }
                }
                QOp::PushUsed => {
                    if let Some((head, n)) = popped.pop_front() {
                        q.push_used(UsedElem { id: head, len: 0 }, PUSH, &mut tl);
                        used.push((head, n));
                    }
                }
                QOp::TakeUsed => {
                    let drained = q.take_used().unwrap();
                    prop_assert_eq!(drained.len(), used.len());
                    for (elem, (head, n)) in drained.iter().zip(&used) {
                        prop_assert_eq!(elem.id, *head);
                        free += n;
                    }
                    used.clear();
                }
            }
            prop_assert_eq!(q.free_descriptors(), free, "free-list accounting drifted");
        }
    }

    /// Chains resolve with the exact payload descriptors posted, in order,
    /// with correct read/write partitioning.
    #[test]
    fn chains_resolve_exactly(
        lens in prop::collection::vec(1u32..100_000, 1..8),
        write_mask in prop::collection::vec(any::<bool>(), 8),
    ) {
        let q = VirtQueue::new(32);
        let mut tl = Timeline::new();
        let descs: Vec<Descriptor> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| {
                if write_mask[i % write_mask.len()] {
                    Descriptor::writable(0x10_0000 + i as u64 * 0x1000, len)
                } else {
                    Descriptor::readable(0x10_0000 + i as u64 * 0x1000, len)
                }
            })
            .collect();
        q.add_chain(&descs, PUSH, &mut tl).unwrap();
        let chain = q.pop_avail().unwrap().unwrap();
        prop_assert_eq!(chain.descriptors.len(), descs.len());
        for (got, want) in chain.descriptors.iter().zip(&descs) {
            prop_assert_eq!(got.addr, want.addr);
            prop_assert_eq!(got.len, want.len);
            prop_assert_eq!(got.flags.write, want.flags.write);
        }
        prop_assert_eq!(chain.total_len(), lens.iter().map(|&l| l as u64).sum::<u64>());
        let writables = chain.writable().count();
        let readables = chain.readable().count();
        prop_assert_eq!(writables + readables, descs.len());
    }
}

//! Workspace-level integration tests live in the sibling files.

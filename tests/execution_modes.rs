//! All three Xeon Phi execution modes through vPHI (paper §II-A):
//! *native* (micnativeloadex), *offload* (COI pipeline), *symmetric*
//! (mpi-lite) — each run from inside a VM.

use std::sync::Arc;

use vphi::builder::{VmConfig, VphiHost};
use vphi_coi::pipeline::CoiPipeline;
use vphi_coi::process::LaunchSpec;
use vphi_coi::transport::{CoiEnv, CoiListener, CoiTransport};
use vphi_coi::{CoiDaemon, CoiEngine, CoiProcess, ComputeManifest, GuestEnv};
use vphi_mic_tools::mpilite::{establish_leaf, establish_root};
use vphi_mic_tools::{micnativeloadex, MicBinary};
use vphi_scif::{NodeId, Port, ScifAddr, ScifResult, HOST_NODE};
use vphi_sim_core::{SimDuration, Timeline};

#[test]
fn native_mode_from_a_vm() {
    let host = VphiHost::new(1);
    let daemon = CoiDaemon::spawn(&host, 0).unwrap();
    let vm = host.spawn_vm(VmConfig::default());
    let env: Arc<dyn CoiEnv> = Arc::new(GuestEnv::new(&vm));

    let binary = MicBinary::dgemm_sample(1024);
    let report = micnativeloadex(&env, 0, &binary, 112).unwrap();
    assert_eq!(report.exit_code, 0);
    assert!(report.device_time > SimDuration::ZERO);
    assert!(report.stdout.contains("dgemm_mic"));

    // STREAM and n-body binaries also run (different library closures).
    let stream = micnativeloadex(&env, 0, &MicBinary::stream(1 << 22, 10), 224).unwrap();
    assert_eq!(stream.exit_code, 0);
    let nbody = micnativeloadex(&env, 0, &MicBinary::nbody(4096, 2), 224).unwrap();
    assert_eq!(nbody.exit_code, 0);
    assert_eq!(daemon.launch_count(), 3);

    vm.shutdown();
    daemon.shutdown();
}

#[test]
fn offload_mode_from_a_vm() {
    let host = VphiHost::new(1);
    let daemon = CoiDaemon::spawn(&host, 0).unwrap();
    let vm = host.spawn_vm(VmConfig::default());
    let env: Arc<dyn CoiEnv> = Arc::new(GuestEnv::new(&vm));
    let engine = CoiEngine::get(env, 0).unwrap();

    let mut tl = Timeline::new();
    let sink = LaunchSpec {
        name: "offload_main_mic".into(),
        binary_bytes: 256 << 10,
        lib_bytes: 8 << 20,
        env_count: 0,
        manifest: ComputeManifest::new(0.0, 0, 1),
    };
    let proc = CoiProcess::launch(&engine, &sink, &mut tl).unwrap();
    let buf = proc.create_buffer(16 << 20, &mut tl).unwrap();
    proc.write_buffer(&buf, 16 << 20, &mut tl).unwrap();

    let mut pipeline = CoiPipeline::create(&proc);
    for i in 0..4 {
        let ret = pipeline
            .run_function(
                &format!("kernel{i}"),
                &[&buf],
                ComputeManifest::new(1.0e10, 0, 112),
                &mut tl,
            )
            .unwrap();
        assert_eq!(ret, 0);
    }
    assert_eq!(pipeline.history().len(), 4);
    // Four identical kernels → identical device times (determinism).
    let times: Vec<_> = pipeline.history().iter().map(|r| r.device_time).collect();
    assert!(times.windows(2).all(|w| w[0] == w[1]));

    proc.read_buffer(&buf, 1 << 20, &mut tl).unwrap();
    proc.destroy_buffer(buf, &mut tl).unwrap();
    proc.destroy();
    vm.shutdown();
    daemon.shutdown();
}

/// Card-side rank environment for the symmetric test.
struct DeviceSideEnv {
    fabric: Arc<vphi_scif::ScifFabric>,
    node: NodeId,
}

impl CoiEnv for DeviceSideEnv {
    fn connect(
        &self,
        node: NodeId,
        port: Port,
        tl: &mut Timeline,
    ) -> ScifResult<Box<dyn CoiTransport>> {
        let ep = vphi_scif::ScifEndpoint::open(&self.fabric, self.node)?;
        ep.connect(ScifAddr::new(node, port), tl)?;
        Ok(Box::new(ep))
    }

    fn listen(&self, port: Port, tl: &mut Timeline) -> ScifResult<Box<dyn CoiListener>> {
        let ep = vphi_scif::ScifEndpoint::open(&self.fabric, self.node)?;
        ep.bind(port, &mut *tl)?;
        ep.listen(16, &mut *tl)?;
        Ok(Box::new(ep))
    }

    fn device_count(&self) -> usize {
        1
    }

    fn card_usable(&self, _mic: u32, _tl: &mut Timeline) -> bool {
        true
    }

    fn label(&self) -> String {
        format!("{}", self.node)
    }
}

#[test]
fn symmetric_mode_with_vm_root_and_device_leaves() {
    let host = VphiHost::new(1);
    let vm = Arc::new(host.spawn_vm(VmConfig::default()));
    const SIZE: usize = 3;
    const PORT: Port = Port(988);

    let mut handles = Vec::new();
    for rank in 0..SIZE {
        let env: Arc<dyn CoiEnv> = if rank == 0 {
            Arc::new(GuestEnv::new(&vm))
        } else {
            Arc::new(DeviceSideEnv { fabric: Arc::clone(host.fabric()), node: host.device_node(0) })
        };
        handles.push(std::thread::spawn(move || {
            let mut tl = Timeline::new();
            let comm = if rank == 0 {
                establish_root(env.as_ref(), PORT, SIZE, &mut tl).unwrap()
            } else {
                establish_leaf(env.as_ref(), HOST_NODE, PORT, rank, SIZE, &mut tl).unwrap()
            };
            comm.barrier(&mut tl).unwrap();
            let sum = comm.allreduce_sum((rank + 1) as f64, &mut tl).unwrap();
            // The VM root's communication is far more expensive than the
            // on-card leaves' — return the cost for the assertion below.
            (rank, sum, tl.total())
        }));
    }
    let results: Vec<(usize, f64, SimDuration)> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();
    for (_, sum, _) in &results {
        assert_eq!(*sum, 6.0); // 1+2+3
    }
    let root_cost = results.iter().find(|(r, _, _)| *r == 0).unwrap().2;
    let leaf_cost = results.iter().find(|(r, _, _)| *r == 1).unwrap().2;
    assert!(
        root_cost > leaf_cost,
        "VM rank must pay the virtualization tax: root {root_cost} vs leaf {leaf_cost}"
    );
    vm.shutdown();
}

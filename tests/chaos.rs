//! Chaos: full-stack guest workloads under deterministic randomized fault
//! plans.  Every run is reproducible from its seed — the plan is generated
//! by the sim-core RNG and byte-identical across runs — and every failure
//! mode must end in recovery or a clean error, never a hang or a leak.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use vphi::builder::{VmConfig, VphiHost, VphiVm};
use vphi::debugfs::VphiDebugReport;
use vphi_faults::{FaultPlan, FaultSite};
use vphi_scif::window::WindowBacking;
use vphi_scif::{Port, Prot, RmaFlags, ScifAddr, ScifError};
use vphi_sim_core::Timeline;
use vphi_trace::TraceConfig;

/// The fixed seeds CI sweeps (see .github/workflows/ci.yml).
const SEEDS: [u64; 3] = [11, 47, 2026];

/// Fault points per plan; every point fires at most once, so the total
/// disruption — and with it the wall time of a run — stays bounded.
const PLAN_POINTS: usize = 12;

const ITERATIONS: usize = 12;
const MAX_ATTEMPTS_PER_ITERATION: usize = 25;

/// A fault-tolerant echo + RMA-window server on card 0: every connection
/// gets a 4 KiB read-write window at offset 0 and its bytes echoed back.
/// Connection-level errors (the card locking up mid-echo, the peer's
/// guest dying) end that connection, never the server.
fn chaos_server(host: &VphiHost, port: u16, stop: Arc<AtomicBool>) -> std::thread::JoinHandle<()> {
    let server = host.device_endpoint(0).unwrap();
    let board = Arc::clone(host.board(0));
    let mut tl = Timeline::new();
    server.bind(Port(port), &mut tl).unwrap();
    server.listen(8, &mut tl).unwrap();
    std::thread::spawn(move || {
        let mut tl = Timeline::new();
        while !stop.load(Ordering::Relaxed) {
            match server.try_accept(&mut tl) {
                Ok(Some(conn)) => {
                    if let Ok(region) = board.memory().alloc(4096) {
                        let _ = conn.register(
                            Some(0),
                            4096,
                            Prot::READ_WRITE,
                            WindowBacking::Device(region),
                            &mut tl,
                        );
                    }
                    loop {
                        // The protocol is fixed-size: every client message is
                        // exactly 5 bytes (recv is SCIF_RECV_BLOCK — it waits
                        // for a *full* buffer, short only on close).
                        let mut buf = [0u8; 5];
                        match conn.recv(&mut buf, &mut tl) {
                            Ok(5) => {
                                if conn.send(&buf, &mut tl).is_err() {
                                    break;
                                }
                            }
                            _ => break,
                        }
                    }
                    conn.close();
                }
                Ok(None) | Err(_) => std::thread::sleep(Duration::from_millis(2)),
            }
        }
    })
}

macro_rules! step {
    ($e:expr, $name:literal) => {
        match $e {
            Ok(v) => v,
            Err(er) => {
                eprintln!("[chaos dbg] step {} -> {:?}", $name, er);
                return Err(er);
            }
        }
    };
}

/// One full guest session: open, connect, message echo, an RMA write into
/// the server's window, register/unregister a guest window, close.
fn one_session(host: &VphiHost, vm: &VphiVm, port: u16) -> Result<(), ScifError> {
    let mut tl = Timeline::new();
    let addr = ScifAddr::new(host.device_node(0), Port(port));
    let ep = step!(vm.open_scif(&mut tl), "open");
    step!(ep.connect(addr, &mut tl), "connect");
    step!(ep.send(b"ping!", &mut tl), "send");
    let mut back = [0u8; 5];
    let mut got = 0;
    while got < back.len() {
        let n = step!(ep.recv(&mut back[got..], &mut tl), "recv");
        if n == 0 {
            return Err(ScifError::ConnReset);
        }
        got += n;
    }
    assert_eq!(&back, b"ping!");
    let buf = step!(vm.alloc_buf(4096), "alloc");
    step!(ep.vwriteto(&buf, 0, RmaFlags::SYNC, &mut tl), "vwriteto");
    let off = step!(ep.register(&buf, Prot::READ_WRITE, None, &mut tl), "register");
    step!(ep.unregister(off, 4096, &mut tl), "unregister");
    step!(ep.close(&mut tl), "close");
    Ok(())
}

/// Drive `ITERATIONS` sessions with classified-error recovery: retryable
/// errors are retried, a failed card is reset (quarantining only this
/// VM's endpoints), and a dead guest ends the workload.  Returns
/// (completed sessions, card resets driven by this workload).
fn run_workload(host: &VphiHost, vm: &VphiVm, port: u16) -> (usize, usize) {
    let mut completed = 0;
    let mut resets = 0;
    'iterations: for _ in 0..ITERATIONS {
        for _attempt in 0..MAX_ATTEMPTS_PER_ITERATION {
            if vm.frontend().channel().is_shutdown() {
                break 'iterations; // the guest is gone for good
            }
            match one_session(host, vm, port) {
                Ok(()) => {
                    completed += 1;
                    eprintln!("[chaos dbg] iteration done ({completed}/{ITERATIONS})");
                    continue 'iterations;
                }
                Err(ScifError::NoDev) if host.board(0).is_failed() => {
                    host.reset_card(0);
                    resets += 1;
                    eprintln!("[chaos dbg] card reset #{resets}");
                }
                Err(e) if e.is_retryable() => {}
                Err(_) => {} // fatal for this session; a fresh one may work
            }
        }
    }
    (completed, resets)
}

/// Zero-leak audit over one VM's backend.
fn assert_no_leaks(vm: &VphiVm, label: &str) {
    let st = &vm.backend().inner().stats;
    eprintln!(
        "[chaos dbg] {label}: open={} windows={} gced={} deaths={} quar={} msi_lost={}",
        vm.backend().open_endpoints(),
        vm.backend().inner().window_entries(),
        st.endpoints_gced.load(Ordering::Relaxed),
        st.guest_deaths.load(Ordering::Relaxed),
        st.endpoints_quarantined.load(Ordering::Relaxed),
        st.msi_lost.load(Ordering::Relaxed),
    );
    assert_eq!(vm.backend().open_endpoints(), 0, "{label}: leaked backend endpoints");
    assert_eq!(vm.backend().inner().window_entries(), 0, "{label}: leaked pinned windows");
}

fn chaos_round(seed: u64) {
    let start = Instant::now();
    let host = VphiHost::new(1);
    // Chaos runs on the multi-queue transport (the default config), with
    // the tracer armed so quiesce can prove no span was orphaned by a
    // fault: every begun span must be ended even on error paths.
    assert!(VmConfig::default().num_queues > 1, "chaos must exercise the sharded backend");
    let tracer = host.arm_tracing(TraceConfig::default());
    let stop = Arc::new(AtomicBool::new(false));
    let port = 700 + seed as u16 % 100;
    let server = chaos_server(&host, port, Arc::clone(&stop));

    // Same seed ⇒ byte-identical fault schedule, every time.
    let plan = FaultPlan::from_seed(seed, PLAN_POINTS);
    assert_eq!(plan.encode(), FaultPlan::from_seed(seed, PLAN_POINTS).encode());
    let injector = host.arm_faults(plan.clone());
    assert_eq!(injector.plan().encode(), plan.encode());
    eprintln!("[chaos dbg] plan: {plan:?}");

    // Victim phase: a VM runs its workload while the plan fires.
    let victim = host.spawn_vm(VmConfig::default());
    let (completed, resets) = run_workload(&host, &victim, port);
    let victim_died = victim.frontend().channel().is_shutdown();
    // Each fault point fires at most once, so either the workload pushed
    // through every disruption or the guest itself was killed.
    assert!(
        victim_died || completed == ITERATIONS,
        "seed {seed}: victim neither died nor finished ({completed}/{ITERATIONS})"
    );
    if !victim_died {
        assert_no_leaks(&victim, "victim");
    } else {
        // The dead-guest GC must have drained everything it held.
        assert_no_leaks(&victim, "dead victim");
        let stats = &victim.backend().inner().stats;
        assert!(stats.guest_deaths.load(Ordering::Relaxed) >= 1);
    }
    let _ = resets; // card resets are legal but not required by every seed

    // A failed board at the end of the victim phase is recovered here so
    // the bystander starts from a healthy card.
    if host.board(0).is_failed() || !host.board(0).is_online() {
        host.reset_card(0);
    }

    // Bystander phase: defuse the injector (counters keep counting, no
    // new faults fire) and prove an unaffected VM makes full progress.
    injector.defuse();
    let bystander = host.spawn_vm(VmConfig::default());
    let (b_completed, b_resets) = run_workload(&host, &bystander, port);
    assert_eq!(b_completed, ITERATIONS, "seed {seed}: bystander VM failed to progress");
    assert_eq!(b_resets, 0, "seed {seed}: bystander saw card failures after defuse");
    assert_no_leaks(&bystander, "bystander");

    // The sharded transport really engaged: the bystander's endpoints
    // hashed beyond a single lane.
    let report = VphiDebugReport::collect(&bystander);
    assert!(report.queues.len() > 1, "expected a multi-queue channel");
    let busy = report.queues.iter().filter(|q| q.chains_popped > 0).count();
    assert!(busy > 1, "seed {seed}: all chaos traffic stayed on one lane: {:?}", report.queues);

    stop.store(true, Ordering::Relaxed);
    victim.shutdown();
    bystander.shutdown();
    server.join().unwrap();

    // Quiesced: every span begun during the round — including the ones cut
    // short by faults, retries, and the dead guest — was ended.
    let c = tracer.counters();
    assert_eq!(c.open_spans, 0, "seed {seed}: orphan spans after quiesce: {c:?}");
    assert_eq!(c.traces_started, c.traces_finished, "seed {seed}: unfinished traces: {c:?}");

    // No virtual-time hang: the whole round (bounded deadline retries
    // included) finishes in bounded wall time.
    assert!(
        start.elapsed() < Duration::from_secs(60),
        "seed {seed}: chaos round overstayed {:?}",
        start.elapsed()
    );
    assert_eq!(vphi_sync::audit::violation_count(), 0);
}

#[test]
fn chaos_seed_11() {
    chaos_round(SEEDS[0]);
}

#[test]
fn chaos_seed_47() {
    chaos_round(SEEDS[1]);
}

#[test]
fn chaos_seed_2026() {
    chaos_round(SEEDS[2]);
}

/// `VPHI_CHAOS_SEED` lets CI (and bug reports) replay one exact plan.
#[test]
fn chaos_env_seed_replay() {
    if let Ok(s) = std::env::var("VPHI_CHAOS_SEED") {
        let seed: u64 = s.parse().expect("VPHI_CHAOS_SEED must be a u64");
        chaos_round(seed);
    }
}

/// The plan generator is stable: pinned bytes for a pinned seed, so a
/// schedule recorded in a bug report stays replayable forever.
#[test]
fn fault_plans_are_byte_stable() {
    for seed in SEEDS {
        let a = FaultPlan::from_seed(seed, PLAN_POINTS).encode();
        let b = FaultPlan::from_seed(seed, PLAN_POINTS).encode();
        assert_eq!(a, b, "seed {seed} produced diverging schedules");
        assert_eq!(a.len(), 8 + PLAN_POINTS * 17, "seed {seed}: encoding size changed");
    }
    // Single-point plans round-trip sites and parameters too.
    let single = FaultPlan::single(FaultSite::VirtioUsedDelay, 3, 250);
    assert_eq!(single.encode(), FaultPlan::single(FaultSite::VirtioUsedDelay, 3, 250).encode());
    assert_ne!(single.encode(), FaultPlan::single(FaultSite::VirtioUsedDelay, 3, 251).encode());
}

//! `scif_poll` through vPHI, and multi-card configurations.

use std::sync::Arc;

use vphi::builder::{VmConfig, VphiHost};
use vphi_coi::transport::CoiEnv;
use vphi_coi::{CoiDaemon, GuestEnv};
use vphi_mic_tools::{micnativeloadex, MicBinary};
use vphi_scif::{PollEvents, Port, ScifAddr};
use vphi_sim_core::Timeline;

fn echo_ready_server(host: &VphiHost, port: Port) -> std::thread::JoinHandle<()> {
    let server = host.device_endpoint(0).unwrap();
    let (tx, rx) = std::sync::mpsc::channel();
    let h = std::thread::spawn(move || {
        let mut tl = Timeline::new();
        server.bind(port, &mut tl).unwrap();
        server.listen(2, &mut tl).unwrap();
        tx.send(()).unwrap();
        let conn = server.accept(&mut tl).unwrap();
        // Wait for a request byte, sleep (wall), then reply — gives the
        // guest something to poll for.
        let mut b = [0u8; 1];
        while conn.core().recv(&mut b, &mut tl) == Ok(1) {
            std::thread::sleep(std::time::Duration::from_millis(15));
            if conn.core().send(b"R", &mut tl).is_err() {
                break;
            }
        }
    });
    rx.recv().unwrap();
    h
}

#[test]
fn guest_poll_reports_readiness() {
    let host = VphiHost::new(1);
    let server = echo_ready_server(&host, Port(990));
    let vm = host.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let ep = vm.open_scif(&mut tl).unwrap();
    ep.connect(ScifAddr::new(host.device_node(0), Port(990)), &mut tl).unwrap();

    // Nothing pending: a zero-timeout poll sees OUT (writable) but not IN.
    let re = ep.poll(PollEvents::IN | PollEvents::OUT, 0, &mut tl).unwrap();
    assert!(re.contains(PollEvents::OUT));
    assert!(!re.contains(PollEvents::IN));

    // Ask the server for a reply, then poll with a timeout until IN fires
    // (the RDMA-completion-notification idiom from §II-B).
    ep.send(&[1], &mut tl).unwrap();
    let re = ep.poll(PollEvents::IN, 2_000, &mut tl).unwrap();
    assert!(re.contains(PollEvents::IN), "poll never saw the reply: {re:?}");
    let mut b = [0u8; 1];
    assert_eq!(ep.recv(&mut b, &mut tl).unwrap(), 1);
    assert_eq!(&b, b"R");

    // Timed polls run on backend workers — the VM was not frozen for the
    // poll's park time.
    assert!(
        vm.backend().inner().stats.worker_dispatches.load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );

    ep.close(&mut tl).unwrap();
    vm.shutdown();
    server.join().unwrap();
}

#[test]
fn poll_sees_hup_after_peer_close() {
    let host = VphiHost::new(1);
    let server = host.device_endpoint(0).unwrap();
    let (tx, rx) = std::sync::mpsc::channel();
    let dev = std::thread::spawn(move || {
        let mut tl = Timeline::new();
        server.bind(Port(991), &mut tl).unwrap();
        server.listen(2, &mut tl).unwrap();
        tx.send(()).unwrap();
        let conn = server.accept(&mut tl).unwrap();
        conn.close(); // hang up immediately
    });
    rx.recv().unwrap();

    let vm = host.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let ep = vm.open_scif(&mut tl).unwrap();
    ep.connect(ScifAddr::new(host.device_node(0), Port(991)), &mut tl).unwrap();
    dev.join().unwrap();
    let re = ep.poll(PollEvents::IN | PollEvents::OUT, 2_000, &mut tl).unwrap();
    assert!(re.contains(PollEvents::HUP), "expected HUP, got {re:?}");
    ep.close(&mut tl).unwrap();
    vm.shutdown();
}

#[test]
fn one_vm_drives_two_cards_through_two_daemons() {
    let host = VphiHost::new(2);
    let d0 = CoiDaemon::spawn(&host, 0).unwrap();
    let d1 = CoiDaemon::spawn(&host, 1).unwrap();
    let vm = host.spawn_vm(VmConfig::default());
    let env: Arc<dyn CoiEnv> = Arc::new(GuestEnv::new(&vm));
    assert_eq!(env.device_count(), 2);

    let binary = MicBinary::stream(1 << 20, 8);
    let r0 = micnativeloadex(&env, 0, &binary, 112).unwrap();
    let r1 = micnativeloadex(&env, 1, &binary, 112).unwrap();
    assert_eq!(r0.exit_code, 0);
    assert_eq!(r1.exit_code, 0);
    // Identical workloads on identical cards take identical device time.
    assert_eq!(r0.device_time, r1.device_time);
    assert_eq!(d0.launch_count(), 1);
    assert_eq!(d1.launch_count(), 1);

    vm.shutdown();
    d0.shutdown();
    d1.shutdown();
}

#[test]
fn debug_report_over_a_real_workload() {
    use vphi::debugfs::VphiDebugReport;
    let host = VphiHost::new(1);
    let daemon = CoiDaemon::spawn(&host, 0).unwrap();
    let vm = host.spawn_vm(VmConfig::default());
    let env: Arc<dyn CoiEnv> = Arc::new(GuestEnv::new(&vm));
    micnativeloadex(&env, 0, &MicBinary::dgemm_sample(1024), 112).unwrap();
    let report = VphiDebugReport::collect(&vm);
    // A launch crosses the ring many times (sysfs, handshake frames,
    // 141MB of staging chunks, replies).
    // (the 141 MB of binary+libs crosses as ~36 timed-lane transactions)
    assert!(report.requests > 40, "only {} requests", report.requests);
    // Byte-exact staging chunks come from the COI control frames.
    assert!(report.chunks_staged >= 4, "only {} chunks", report.chunks_staged);
    assert!(report.irq_injections == report.backend_requests);
    assert!(report.vm_paused > vphi_sim_core::SimDuration::ZERO);
    assert!(report.render().contains(&format!("vphi{}", vm.vm().id())));
    vm.shutdown();
    daemon.shutdown();
}

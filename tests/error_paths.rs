//! Error propagation across the whole stack: SCIF errno values must
//! survive the trip device → host driver → backend → wire → frontend →
//! guest user space unchanged.

use vphi::builder::{VmConfig, VphiHost};
use vphi::{Cq, Sq, SqEntry, VphiRequest};
use vphi_faults::{FaultPlan, FaultSite};
use vphi_scif::{ErrorClass, Port, Prot, RmaFlags, ScifAddr, ScifError};
use vphi_sim_core::Timeline;

#[test]
fn connect_refused_reaches_the_guest() {
    let host = VphiHost::new(1);
    let vm = host.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let ep = vm.open_scif(&mut tl).unwrap();
    assert_eq!(
        ep.connect(ScifAddr::new(host.device_node(0), Port(9999)), &mut tl),
        Err(ScifError::ConnRefused)
    );
    vm.shutdown();
}

#[test]
fn no_such_node_reaches_the_guest() {
    let host = VphiHost::new(1);
    let vm = host.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let ep = vm.open_scif(&mut tl).unwrap();
    assert_eq!(
        ep.connect(ScifAddr::new(vphi_scif::NodeId(9), Port(1)), &mut tl),
        Err(ScifError::NoDev)
    );
    vm.shutdown();
}

#[test]
fn rma_on_unregistered_offset_reaches_the_guest() {
    let host = VphiHost::new(1);
    // A device server that accepts but registers nothing.
    let server = host.device_endpoint(0).unwrap();
    let (tx, rx) = std::sync::mpsc::channel();
    let dev = std::thread::spawn(move || {
        let mut tl = Timeline::new();
        server.bind(Port(975), &mut tl).unwrap();
        server.listen(2, &mut tl).unwrap();
        tx.send(()).unwrap();
        let conn = server.accept(&mut tl).unwrap();
        let mut b = [0u8; 1];
        let _ = conn.core().recv(&mut b, &mut tl);
    });
    rx.recv().unwrap();

    let vm = host.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let ep = vm.open_scif(&mut tl).unwrap();
    ep.connect(ScifAddr::new(host.device_node(0), Port(975)), &mut tl).unwrap();
    let buf = vm.alloc_buf(4096).unwrap();
    assert_eq!(
        ep.vreadfrom(&buf, 0xdead_0000, RmaFlags::SYNC, &mut tl),
        Err(ScifError::OutOfRange)
    );
    ep.close(&mut tl).unwrap();
    vm.shutdown();
    dev.join().unwrap();
}

#[test]
fn double_bind_and_bad_listen_reach_the_guest() {
    let host = VphiHost::new(1);
    let vm = host.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let a = vm.open_scif(&mut tl).unwrap();
    let b = vm.open_scif(&mut tl).unwrap();
    a.bind(Port(976), &mut tl).unwrap();
    // Port already taken — EADDRINUSE crosses the ring.  The backend's
    // host endpoints share the host port space, so guest B colliding with
    // guest A's port is exactly the host-process semantics.
    assert_eq!(b.bind(Port(976), &mut tl), Err(ScifError::AddrInUse));
    // Listen before bind — ENOTCONN.
    let c = vm.open_scif(&mut tl).unwrap();
    assert_eq!(c.listen(4, &mut tl), Err(ScifError::NotConn));
    // Send before connect — ENOTCONN.
    assert_eq!(c.send(b"x", &mut tl), Err(ScifError::NotConn));
    vm.shutdown();
}

#[test]
fn operations_on_closed_endpoints_fail_cleanly() {
    let host = VphiHost::new(1);
    let vm = host.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let ep = vm.open_scif(&mut tl).unwrap();
    ep.close(&mut tl).unwrap();
    // Closing twice is idempotent.
    assert!(ep.close(&mut tl).is_ok());
    // Further calls on the stale epd are EINVAL from the backend table.
    assert!(ep.bind(Port(977), &mut tl).is_err());
    vm.shutdown();
}

#[test]
fn register_with_bad_protection_combination() {
    let host = VphiHost::new(1);
    // Device window registered read-only; guest writes must be EACCES.
    let board = std::sync::Arc::clone(host.board(0));
    let server = host.device_endpoint(0).unwrap();
    let (tx, rx) = std::sync::mpsc::channel();
    let dev = std::thread::spawn(move || {
        let mut tl = Timeline::new();
        server.bind(Port(978), &mut tl).unwrap();
        server.listen(2, &mut tl).unwrap();
        tx.send(()).unwrap();
        let conn = server.accept(&mut tl).unwrap();
        let region = board.memory().alloc(4096).unwrap();
        conn.register(
            Some(0),
            4096,
            Prot::READ,
            vphi_scif::window::WindowBacking::Device(region),
            &mut tl,
        )
        .unwrap();
        conn.core().send(&[1], &mut tl).unwrap();
        let mut b = [0u8; 1];
        let _ = conn.core().recv(&mut b, &mut tl);
    });
    rx.recv().unwrap();

    let vm = host.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let ep = vm.open_scif(&mut tl).unwrap();
    ep.connect(ScifAddr::new(host.device_node(0), Port(978)), &mut tl).unwrap();
    let mut ready = [0u8; 1];
    ep.recv(&mut ready, &mut tl).unwrap();
    let buf = vm.alloc_buf(4096).unwrap();
    // Read is fine…
    ep.vreadfrom(&buf, 0, RmaFlags::SYNC, &mut tl).unwrap();
    // …write violates the window protection.
    assert_eq!(ep.vwriteto(&buf, 0, RmaFlags::SYNC, &mut tl), Err(ScifError::Access));
    // mmap asking for more than the window grants also fails.
    assert_eq!(
        ep.mmap(vm.vm().kvm(), 0, 4096, Prot::READ_WRITE, &mut tl).err(),
        Some(ScifError::Access)
    );
    ep.send(&[0], &mut tl).unwrap();
    ep.close(&mut tl).unwrap();
    vm.shutdown();
    dev.join().unwrap();
}

#[test]
fn guest_unregister_of_unknown_window_fails() {
    let host = VphiHost::new(1);
    let server = host.device_endpoint(0).unwrap();
    let (tx, rx) = std::sync::mpsc::channel();
    let dev = std::thread::spawn(move || {
        let mut tl = Timeline::new();
        server.bind(Port(979), &mut tl).unwrap();
        server.listen(2, &mut tl).unwrap();
        tx.send(()).unwrap();
        let conn = server.accept(&mut tl).unwrap();
        let mut b = [0u8; 1];
        let _ = conn.core().recv(&mut b, &mut tl);
    });
    rx.recv().unwrap();

    let vm = host.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let ep = vm.open_scif(&mut tl).unwrap();
    ep.connect(ScifAddr::new(host.device_node(0), Port(979)), &mut tl).unwrap();
    assert_eq!(ep.unregister(0x5000, 4096, &mut tl), Err(ScifError::OutOfRange));
    ep.close(&mut tl).unwrap();
    vm.shutdown();
    dev.join().unwrap();
}

#[test]
fn guest_death_during_register_gcs_the_backend() {
    let host = VphiHost::new(1);
    // The guest's third request (open, connect, register) never returns:
    // the QEMU process dies abruptly mid-register.
    host.arm_faults(FaultPlan::single(FaultSite::VmmGuestDeath, 3, 0));

    let server = host.device_endpoint(0).unwrap();
    let (tx, rx) = std::sync::mpsc::channel();
    let dev = std::thread::spawn(move || {
        let mut tl = Timeline::new();
        server.bind(Port(980), &mut tl).unwrap();
        server.listen(2, &mut tl).unwrap();
        tx.send(()).unwrap();
        let conn = server.accept(&mut tl).unwrap();
        let mut b = [0u8; 1];
        let _ = conn.core().recv(&mut b, &mut tl);
    });
    rx.recv().unwrap();

    let vm = host.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let ep = vm.open_scif(&mut tl).unwrap();
    ep.connect(ScifAddr::new(host.device_node(0), Port(980)), &mut tl).unwrap();
    let buf = vm.alloc_buf(4096).unwrap();
    // The dying guest's register observes the dead device, not a hang.
    assert_eq!(ep.register(&buf, Prot::READ_WRITE, None, &mut tl), Err(ScifError::NoDev));
    // Everything after fails fast on the shutdown flag.
    assert_eq!(ep.send(b"x", &mut tl), Err(ScifError::NoDev));

    // The dead-guest GC released the backend's endpoint and window state.
    assert_eq!(vm.backend().open_endpoints(), 0);
    assert_eq!(vm.backend().inner().window_entries(), 0);
    let stats = &vm.backend().inner().stats;
    assert_eq!(stats.guest_deaths.load(std::sync::atomic::Ordering::Relaxed), 1);
    assert_eq!(stats.endpoints_gced.load(std::sync::atomic::Ordering::Relaxed), 1);

    vm.shutdown();
    dev.join().unwrap();
}

#[test]
fn double_close_after_card_reset_pins_exact_errors() {
    let host = VphiHost::new(1);

    let server = host.device_endpoint(0).unwrap();
    let (tx, rx) = std::sync::mpsc::channel();
    let dev = std::thread::spawn(move || {
        let mut tl = Timeline::new();
        server.bind(Port(981), &mut tl).unwrap();
        server.listen(2, &mut tl).unwrap();
        tx.send(()).unwrap();
        let conn = server.accept(&mut tl).unwrap();
        let mut b = [0u8; 1];
        let _ = conn.core().recv(&mut b, &mut tl);
    });
    rx.recv().unwrap();

    let vm = host.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let ep = vm.open_scif(&mut tl).unwrap();
    let epd = ep.epd();
    ep.connect(ScifAddr::new(host.device_node(0), Port(981)), &mut tl).unwrap();

    // Arm once the connection is up: the next traffic to cross the card
    // (the send below) trips a core lockup.
    host.arm_faults(FaultPlan::single(FaultSite::PhiCoreLockup, 1, 0));

    // The lockup strikes on the send: ENODEV, and the board is failed
    // until somebody resets it.
    assert_eq!(ep.send(b"x", &mut tl), Err(ScifError::NoDev));
    assert!(host.board(0).is_failed());

    // Card reset quarantines this guest's endpoint but keeps its epd
    // table entry alive for exactly one clean close.
    host.reset_card(0);
    assert!(host.board(0).is_online());
    assert_eq!(host.board(0).reset_count(), 1);
    assert_eq!(
        vm.backend().inner().stats.endpoints_quarantined.load(std::sync::atomic::Ordering::Relaxed),
        1
    );

    // First close: the stale descriptor is still in the table → success
    // (endpoint close is idempotent).  Second close: EINVAL, pinned.
    assert_eq!(ep.close(&mut tl), Ok(()));
    assert_eq!(vm.frontend().simple(VphiRequest::Close { epd }, &mut tl), Err(ScifError::Inval));

    vm.shutdown();
    dev.join().unwrap();
}

/// Closing an endpoint with submissions still in flight cancels them:
/// every reap still surfaces (the driver drains the backend's completions
/// so nothing leaks), but the result is pinned to `ECANCELED` — errno 125,
/// fatal, never retryable — not whatever the backend happened to return.
#[test]
fn reap_after_close_pins_canceled() {
    // The wire contract first: the errno value and its classification are
    // ABI, frozen like every other entry in this file.
    assert_eq!(ScifError::Canceled.errno(), 125);
    assert_eq!(ScifError::Canceled.class(), ErrorClass::Fatal);
    assert!(!ScifError::Canceled.is_retryable());
    assert_eq!(ScifError::from_errno(125), Some(ScifError::Canceled));

    let host = VphiHost::new(1);
    let server = host.device_endpoint(0).unwrap();
    let (tx, rx) = std::sync::mpsc::channel();
    let dev = std::thread::spawn(move || {
        let mut tl = Timeline::new();
        server.bind(Port(983), &mut tl).unwrap();
        server.listen(2, &mut tl).unwrap();
        tx.send(()).unwrap();
        let conn = server.accept(&mut tl).unwrap();
        let mut b = [0u8; 8];
        while let Ok(n) = conn.core().recv(&mut b, &mut tl) {
            if n == 0 {
                break;
            }
        }
    });
    rx.recv().unwrap();

    let vm = host.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let ep = vm.open_scif(&mut tl).unwrap();
    ep.connect(ScifAddr::new(host.device_node(0), Port(983)), &mut tl).unwrap();

    let mut sq = Sq::new();
    for i in 0u32..4 {
        sq.push(SqEntry::send(&i.to_le_bytes()));
    }
    let tokens = ep.submit(&mut sq, &mut tl).unwrap();
    let mut cq = Cq::new();
    cq.watch(&tokens);

    // Close with all four still outstanding: the tokens flip to canceled.
    ep.close(&mut tl).unwrap();
    let got = ep.reap(&mut cq, tokens.len(), tokens.len(), &mut tl).unwrap();
    assert_eq!(got, tokens.len(), "canceled tokens must still reap");
    for c in cq.drain() {
        assert_eq!(c.result, Err(ScifError::Canceled));
        assert!(c.is_canceled());
    }
    assert_eq!(vm.frontend().pending_tokens(), 0, "canceled tokens leaked");
    assert_eq!(vm.frontend().stats().tokens_canceled, 4);

    vm.shutdown();
    dev.join().unwrap();
}

/// The RAII variant of the double-close-after-reset test: dropping the
/// guest endpoint must behave exactly like the explicit `close()` — it
/// consumes the one live epd-table entry the card reset left behind, and
/// a second close on the stale descriptor pins EINVAL.
#[test]
fn drop_after_card_reset_closes_exactly_once() {
    let host = VphiHost::new(1);

    let server = host.device_endpoint(0).unwrap();
    let (tx, rx) = std::sync::mpsc::channel();
    let dev = std::thread::spawn(move || {
        let mut tl = Timeline::new();
        server.bind(Port(982), &mut tl).unwrap();
        server.listen(2, &mut tl).unwrap();
        tx.send(()).unwrap();
        let conn = server.accept(&mut tl).unwrap();
        let mut b = [0u8; 1];
        let _ = conn.core().recv(&mut b, &mut tl);
    });
    rx.recv().unwrap();

    let vm = host.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let ep = vm.open_scif(&mut tl).unwrap();
    let epd = ep.epd();
    ep.connect(ScifAddr::new(host.device_node(0), Port(982)), &mut tl).unwrap();

    host.arm_faults(FaultPlan::single(FaultSite::PhiCoreLockup, 1, 0));
    assert_eq!(ep.send(b"x", &mut tl), Err(ScifError::NoDev));
    host.reset_card(0);
    assert!(host.board(0).is_online());

    // RAII close via Drop takes the place of the first explicit close.
    drop(ep);
    assert_eq!(vm.backend().open_endpoints(), 0);
    assert_eq!(vm.frontend().simple(VphiRequest::Close { epd }, &mut tl), Err(ScifError::Inval));

    vm.shutdown();
    dev.join().unwrap();
}

//! Property-based tests over the core data structures and invariants
//! (proptest): allocators never overlap, queues preserve byte streams,
//! codecs round-trip, the busy-resource never double-books, and the
//! paravirtual overhead identity holds for arbitrary message sizes.

use proptest::prelude::*;

use vphi::protocol::{VphiRequest, VphiResponse};
use vphi_phi::DeviceMemory;
use vphi_scif::queue::MsgQueue;
use vphi_sim_core::clock::BusyResource;
use vphi_sim_core::cost::{CostModel, PAGE_SIZE};
use vphi_sim_core::{SimDuration, SimTime};
use vphi_vmm::GuestMemory;

// ---------------------------------------------------------------- codecs

fn arb_request() -> impl Strategy<Value = VphiRequest> {
    prop_oneof![
        Just(VphiRequest::Open),
        Just(VphiRequest::GetNodeIds),
        (any::<u64>(), any::<u16>()).prop_map(|(epd, port)| VphiRequest::Bind { epd, port }),
        (any::<u64>(), any::<u32>())
            .prop_map(|(epd, backlog)| VphiRequest::Listen { epd, backlog }),
        (any::<u64>(), any::<u16>(), any::<u16>())
            .prop_map(|(epd, node, port)| VphiRequest::Connect { epd, node, port }),
        (any::<u64>(), any::<u32>()).prop_map(|(epd, len)| VphiRequest::Send { epd, len }),
        (any::<u64>(), any::<u32>()).prop_map(|(epd, len)| VphiRequest::Recv { epd, len }),
        (any::<u64>(), any::<u64>(), any::<u8>(), any::<u64>(), any::<bool>()).prop_map(
            |(epd, len, prot, fixed_offset, has_fixed)| VphiRequest::Register {
                epd,
                len,
                prot,
                fixed_offset,
                has_fixed
            }
        ),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u8>()).prop_map(
            |(epd, roffset, len, flags)| VphiRequest::VreadFrom { epd, roffset, len, flags }
        ),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u8>()).prop_map(
            |(epd, loffset, len, roffset, flags)| VphiRequest::ReadFrom {
                epd,
                loffset,
                len,
                roffset,
                flags
            }
        ),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u8>())
            .prop_map(|(epd, offset, len, prot)| VphiRequest::Mmap { epd, offset, len, prot }),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(epd, loff, lval, roff, rval)| VphiRequest::FenceSignal {
                epd,
                loff,
                lval,
                roff,
                rval
            }
        ),
        (any::<u64>(), any::<u64>()).prop_map(|(epd, len)| VphiRequest::SendTimed { epd, len }),
        any::<u64>().prop_map(|epd| VphiRequest::Close { epd }),
    ]
}

proptest! {
    #[test]
    fn vphi_request_codec_round_trips(req in arb_request()) {
        let encoded = req.encode();
        let decoded = VphiRequest::decode(&encoded).expect("decodes");
        prop_assert_eq!(decoded, req);
    }

    #[test]
    fn vphi_response_codec_round_trips(status in -200000i64..0, v0: u64, v1: u64) {
        let resp = VphiResponse { status, val0: v0, val1: v1 };
        prop_assert_eq!(VphiResponse::decode(&resp.encode()), Some(resp));
    }
}

// ----------------------------------------------------------- allocators

#[derive(Debug, Clone)]
enum AllocOp {
    Alloc(u64),
    FreeNth(usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<AllocOp>> {
    prop::collection::vec(
        prop_oneof![
            (1u64..128 * 1024).prop_map(AllocOp::Alloc),
            (0usize..64).prop_map(AllocOp::FreeNth),
        ],
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn device_memory_allocations_never_overlap(ops in arb_ops()) {
        let mem = DeviceMemory::new(16 * 1024 * 1024);
        let mut live: Vec<(u64, u64)> = Vec::new(); // (offset, len)
        for op in ops {
            match op {
                AllocOp::Alloc(len) => {
                    if let Ok(region) = mem.alloc_timed(len) {
                        let (off, rlen) = (region.offset(), region.len());
                        // Page-rounded, in-bounds, disjoint from all live.
                        prop_assert_eq!(off % PAGE_SIZE, 0);
                        prop_assert!(rlen >= len);
                        prop_assert!(off + rlen <= mem.capacity());
                        for &(o, l) in &live {
                            prop_assert!(off + rlen <= o || o + l <= off,
                                "overlap: [{off},{rlen}) vs [{o},{l})");
                        }
                        live.push((off, rlen));
                    }
                }
                AllocOp::FreeNth(i) => {
                    if !live.is_empty() {
                        let (off, _) = live.remove(i % live.len());
                        prop_assert!(mem.free(off).is_ok());
                    }
                }
            }
            // Accounting matches the live set exactly.
            prop_assert_eq!(mem.allocated(), live.iter().map(|&(_, l)| l).sum::<u64>());
        }
        // Freeing everything restores a fully usable arena.
        for (off, _) in live {
            prop_assert!(mem.free(off).is_ok());
        }
        prop_assert!(mem.alloc_timed(mem.capacity()).is_ok());
    }

    #[test]
    fn guest_memory_allocations_never_overlap(ops in arb_ops()) {
        let mem = GuestMemory::new(8 * 1024 * 1024);
        let mut live: Vec<(u64, u64)> = Vec::new();
        for op in ops {
            match op {
                AllocOp::Alloc(len) => {
                    if let Ok(gpa) = mem.alloc(len) {
                        let rlen = len.div_ceil(PAGE_SIZE) * PAGE_SIZE;
                        for &(o, l) in &live {
                            prop_assert!(gpa.0 + rlen <= o || o + l <= gpa.0);
                        }
                        live.push((gpa.0, rlen));
                    }
                }
                AllocOp::FreeNth(i) => {
                    if !live.is_empty() {
                        let (off, _) = live.remove(i % live.len());
                        prop_assert!(mem.free(vphi_vmm::Gpa(off)).is_ok());
                    }
                }
            }
        }
    }
}

// ------------------------------------------------------------ msg queue

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The SCIF byte stream delivers exactly the concatenation of the
    /// writes, regardless of how reads and writes are sliced.
    #[test]
    fn msg_queue_preserves_the_byte_stream(
        chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..300), 1..20),
        read_sizes in prop::collection::vec(1usize..128, 1..40),
    ) {
        let q = MsgQueue::new(1 << 16);
        let expected: Vec<u8> = chunks.concat();
        for c in &chunks {
            prop_assert!(q.write_all(c));
        }
        q.close();
        let mut got = Vec::new();
        let mut i = 0;
        loop {
            let want = read_sizes[i % read_sizes.len()];
            i += 1;
            let mut buf = vec![0u8; want];
            let n = q.read_some(&mut buf);
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        prop_assert_eq!(got, expected);
    }
}

// -------------------------------------------------------- busy resource

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Grants on a serial resource never overlap and preserve total hold
    /// time, for arbitrary arrival patterns.
    #[test]
    fn busy_resource_grants_are_disjoint(
        requests in prop::collection::vec((0u64..10_000, 1u64..5_000), 1..50)
    ) {
        let r = BusyResource::new();
        let mut grants = Vec::new();
        let mut total_hold = 0u64;
        for (at, hold) in requests {
            let g = r.acquire(SimTime(at), SimDuration(hold));
            prop_assert!(g.start.0 >= at);
            prop_assert_eq!(g.end.0 - g.start.0, hold);
            total_hold += hold;
            grants.push(g);
        }
        grants.sort_by_key(|g| g.start);
        for pair in grants.windows(2) {
            prop_assert!(pair[0].end <= pair[1].start);
        }
        prop_assert_eq!(r.busy_total(), SimDuration(total_hold));
    }
}

// ------------------------------------------------- cost-model identities

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any size under one staging chunk, the vPHI−native latency gap
    /// stays within the constant overhead plus the staging copy — the
    /// Fig. 4 "constant offset" claim as an algebraic property of the
    /// cost model.
    #[test]
    fn overhead_is_constant_modulo_staging_copies(bytes in 1u64..4 * 1024 * 1024) {
        let m = CostModel::paper_calibrated();
        let constant = m.paravirtual_floor_no_wait() + m.guest_wakeup;
        // vPHI adds: the constant + one staging copy each way of the chunk.
        let staging = m.cpu_copy(bytes);
        let predicted_gap = constant + staging;
        prop_assert!(predicted_gap >= constant);
        prop_assert!(
            predicted_gap.saturating_sub(constant) <= m.cpu_copy(4 * 1024 * 1024),
            "staging term exceeded one full chunk copy"
        );
    }

    /// Throughput ratio (vPHI/native) for an N-byte remote read is
    /// monotonically increasing in N and bounded by the 72% asymptote.
    #[test]
    fn rma_ratio_is_monotone_and_bounded(kib in 1u64..1_000_000) {
        let m = CostModel::paper_calibrated();
        let bytes = kib * 1024;
        let native = m.native_floor() + m.rma_setup + m.link_transfer(bytes);
        let vphi = native + m.paravirtual_floor_no_wait() + m.guest_wakeup
            + m.translate_pages(bytes);
        let ratio = native.as_nanos() as f64 / vphi.as_nanos() as f64;
        let asymptote = {
            let link = m.link_transfer(PAGE_SIZE).as_nanos() as f64;
            link / (link + m.page_translate.as_nanos() as f64)
        };
        prop_assert!(ratio <= asymptote + 1e-9, "ratio {ratio} above asymptote {asymptote}");
    }
}

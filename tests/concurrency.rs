//! Concurrency: multiple guest threads per VM, multiple VMs per card,
//! and the paper's claim that "simultaneous multi-threaded execution
//! requests from different VMs can end up running in parallel".

use std::sync::Arc;

use vphi::builder::{VmConfig, VphiHost};
use vphi_scif::{Port, ScifAddr};
use vphi_sim_core::Timeline;

/// An echo server that serves *multiple* connections concurrently.
fn multi_echo(host: &VphiHost, port: Port, conns: usize) -> std::thread::JoinHandle<()> {
    let server = host.device_endpoint(0).unwrap();
    let (tx, rx) = std::sync::mpsc::channel();
    let h = std::thread::spawn(move || {
        let mut tl = Timeline::new();
        server.bind(port, &mut tl).unwrap();
        server.listen(16, &mut tl).unwrap();
        tx.send(()).unwrap();
        let mut workers = Vec::new();
        for _ in 0..conns {
            let conn = server.accept(&mut tl).unwrap();
            workers.push(std::thread::spawn(move || {
                let mut tl = Timeline::new();
                loop {
                    let mut len = [0u8; 4];
                    if conn.core().recv(&mut len, &mut tl) != Ok(4) {
                        break;
                    }
                    let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
                    if conn.core().recv(&mut payload, &mut tl) != Ok(payload.len()) {
                        break;
                    }
                    if conn.core().send(&len, &mut tl).is_err()
                        || conn.core().send(&payload, &mut tl).is_err()
                    {
                        break;
                    }
                }
            }));
        }
        for w in workers {
            w.join().expect("echo worker panicked");
        }
    });
    rx.recv().unwrap();
    h
}

#[test]
fn many_guest_threads_share_one_frontend() {
    let host = VphiHost::new(1);
    let threads = 6;
    let echo = multi_echo(&host, Port(980), threads);
    let vm = Arc::new(host.spawn_vm(VmConfig::default()));

    let mut handles = Vec::new();
    for t in 0..threads {
        let vm = Arc::clone(&vm);
        let node = host.device_node(0);
        handles.push(std::thread::spawn(move || {
            let mut tl = Timeline::new();
            let ep = vm.open_scif(&mut tl).unwrap();
            ep.connect(ScifAddr::new(node, Port(980)), &mut tl).unwrap();
            for round in 0..10u32 {
                let msg = format!("thread {t} round {round}");
                ep.send(&(msg.len() as u32).to_le_bytes(), &mut tl).unwrap();
                ep.send(msg.as_bytes(), &mut tl).unwrap();
                let mut len = [0u8; 4];
                ep.recv(&mut len, &mut tl).unwrap();
                let mut back = vec![0u8; msg.len()];
                ep.recv(&mut back, &mut tl).unwrap();
                assert_eq!(back, msg.as_bytes(), "cross-talk between guest threads");
            }
            ep.close(&mut tl).unwrap();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // All requests flowed through one ring.
    assert!(vm.frontend().stats().requests >= (threads as u64) * 10);
    vm.shutdown();
    echo.join().unwrap();
    // Six guest threads hammered every lock in the stack; the lock-order
    // audit saw every acquisition and found nothing to flag.
    assert_eq!(vphi_sync::audit::violation_count(), 0, "lock-order violations detected");
    if vphi_sync::audit::ENABLED {
        assert!(vphi_sync::audit::stats().cycle_checks > 0, "audit was not exercised");
    }
}

#[test]
fn several_vms_issue_in_parallel() {
    let host = VphiHost::new(1);
    let n_vms = 4;
    let echo = multi_echo(&host, Port(981), n_vms);
    let vms: Vec<Arc<_>> =
        (0..n_vms).map(|_| Arc::new(host.spawn_vm(VmConfig::default()))).collect();

    let mut handles = Vec::new();
    for (i, vm) in vms.iter().enumerate() {
        let vm = Arc::clone(vm);
        let node = host.device_node(0);
        handles.push(std::thread::spawn(move || {
            let mut tl = Timeline::new();
            let ep = vm.open_scif(&mut tl).unwrap();
            ep.connect(ScifAddr::new(node, Port(981)), &mut tl).unwrap();
            let msg = format!("vm {i}");
            ep.send(&(msg.len() as u32).to_le_bytes(), &mut tl).unwrap();
            ep.send(msg.as_bytes(), &mut tl).unwrap();
            let mut len = [0u8; 4];
            ep.recv(&mut len, &mut tl).unwrap();
            let mut back = vec![0u8; msg.len()];
            ep.recv(&mut back, &mut tl).unwrap();
            assert_eq!(back, msg.as_bytes());
            ep.close(&mut tl).unwrap();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    for vm in &vms {
        vm.shutdown();
    }
    echo.join().unwrap();
}

#[test]
fn accept_on_a_worker_does_not_block_other_requests() {
    // A guest thread parks in scif_accept (served by a QEMU worker);
    // meanwhile another guest thread keeps making calls.  With blocking
    // dispatch this would deadlock the VM — the paper's §III argument.
    let host = VphiHost::new(1);
    let vm = Arc::new(host.spawn_vm(VmConfig::default()));

    let mut tl = Timeline::new();
    let listener = vm.open_scif(&mut tl).unwrap();
    let lport = listener.bind(Port::ANY, &mut tl).unwrap();
    listener.listen(2, &mut tl).unwrap();

    let vm2 = Arc::clone(&vm);
    let accepter = std::thread::spawn(move || {
        let mut tl = Timeline::new();
        listener.accept(&mut tl).map(|(conn, peer)| {
            drop(conn);
            peer
        })
    });

    // While the accept is parked, the VM keeps working.
    std::thread::sleep(std::time::Duration::from_millis(20));
    let sysfs = vm2.sysfs(0, &mut tl).unwrap();
    assert!(sysfs.card_is_usable(), "VM frozen while accept waits");

    // Now satisfy the accept from a *native* client (host process
    // connecting into the guest's listener through the backend).
    let native = host.native_endpoint().unwrap();
    native.connect(ScifAddr::new(vphi_scif::HOST_NODE, lport), &mut tl).unwrap();
    let peer = accepter.join().unwrap().unwrap();
    assert_eq!(peer.node, vphi_scif::HOST_NODE);
    assert!(
        vm.backend().inner().stats.worker_dispatches.load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );

    native.close();
    vm.shutdown();
}

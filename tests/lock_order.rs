//! Regression tests for the lock-order deadlock detector (ISSUE 2).
//!
//! Each test runs under [`vphi_sync::audit::capture_violations`], which
//! redirects reports to a buffer instead of panicking, so a *deliberate*
//! violation can be asserted on without tripping the global counter that
//! the clean-run tests check.
//!
//! These tests share one process (and therefore one global order graph)
//! with each other but not with the other integration-test binaries; they
//! use the `Test*` lock classes, which sit in their own layer band so the
//! edges poisoned here can never implicate the production classes.

// In a plain release build the detector compiles down to no-ops; there is
// nothing to regression-test.  (`--features sync-audit` turns it back on.)
#![cfg(any(debug_assertions, feature = "sync-audit"))]

use std::sync::Arc;

use vphi_sync::audit::capture_violations;
use vphi_sync::{LockClass, TrackedMutex};

/// The classic ABBA: thread-interleaving-independent, caught on the second
/// edge the moment it is recorded — no real deadlock needs to happen.
#[test]
fn abba_acquisition_is_flagged() {
    let a = Arc::new(TrackedMutex::new(LockClass::TestA, 0u32));
    let b = Arc::new(TrackedMutex::new(LockClass::TestB, 0u32));

    // First establish A → B (legal: same layer, first edge wins).
    let ((), first) = capture_violations(|| {
        let _ga = a.lock();
        let _gb = b.lock();
    });
    assert!(first.is_empty(), "A→B alone must be clean: {first:?}");

    // Now B → A: completes the cycle.  A second thread makes the scenario
    // honest (each order is taken by a different thread, as in a real
    // deadlock), but the detector would catch it single-threaded too.
    let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
    let (result, _) = capture_violations(move || {
        std::thread::spawn(move || {
            capture_violations(|| {
                let _gb = b2.lock();
                let _ga = a2.lock();
            })
            .1
        })
        .join()
        .expect("detector thread panicked")
    });
    assert!(
        result.iter().any(|v| v.contains("cycle")),
        "ABBA must be reported as an order cycle: {result:?}"
    );
    // The report names both sides of the deadlock-to-be.
    assert!(
        result.iter().any(|v| v.contains("TestA") && v.contains("TestB")),
        "report must cite both lock classes: {result:?}"
    );
}

/// Holding any tracked lock across a virtual-clock advance serializes
/// unrelated requests behind simulated latency; `VirtualClock` calls
/// `assert_lockless` on every advance/observe.
#[test]
fn lock_held_across_clock_advance_is_flagged() {
    let clock = vphi_sim_core::VirtualClock::new();
    let m = TrackedMutex::new(LockClass::TestOuter, ());

    // Clean when lock-free.
    let ((), clean) = capture_violations(|| {
        clock.advance(vphi_sim_core::SimDuration::from_micros(1));
    });
    assert!(clean.is_empty(), "lock-free advance must be clean: {clean:?}");

    let ((), flagged) = capture_violations(|| {
        let _g = m.lock();
        clock.advance(vphi_sim_core::SimDuration::from_micros(1));
    });
    assert!(
        flagged.iter().any(|v| v.contains("VirtualClock::advance") && v.contains("TestOuter")),
        "advance under a held lock must be reported: {flagged:?}"
    );

    // `observe` is checked the same way.
    let ((), observed) = capture_violations(|| {
        let _g = m.lock();
        clock.observe(vphi_sim_core::SimTime(1));
    });
    assert!(
        observed.iter().any(|v| v.contains("VirtualClock::observe")),
        "observe under a held lock must be reported: {observed:?}"
    );
}

/// Taking an outer-layer lock while holding an inner-layer one inverts the
/// documented hierarchy even before any cycle exists.
#[test]
fn layer_inversion_is_flagged() {
    let outer = TrackedMutex::new(LockClass::TestOuter, ());
    let inner = TrackedMutex::new(LockClass::TestInner, ());

    let ((), ordered) = capture_violations(|| {
        let _o = outer.lock();
        let _i = inner.lock();
    });
    assert!(ordered.is_empty(), "outer→inner is the documented order: {ordered:?}");

    let ((), inverted) = capture_violations(|| {
        let _i = inner.lock();
        let _o = outer.lock();
    });
    assert!(
        inverted.iter().any(|v| v.contains("layer")),
        "inner→outer must be reported as a layer inversion: {inverted:?}"
    );
}

/// A second mutex of the same class on one thread is self-deadlock bait
/// (and with two instances, an undeclared ordering problem).
#[test]
fn same_class_nesting_is_flagged() {
    let x = TrackedMutex::new(LockClass::TestB, 1u32);
    let y = TrackedMutex::new(LockClass::TestB, 2u32);
    let ((), v) = capture_violations(|| {
        let _gx = x.lock();
        let _gy = y.lock();
    });
    assert!(v.iter().any(|m| m.contains("TestB")), "same-class nesting must be reported: {v:?}");
}

/// The production stack runs violation-free: this binary's clean baseline.
/// (The full-stack and concurrency suites assert the same over the real
/// workload; here we pin the invariant that deliberate-violation tests
/// cannot leak into the global counter.)
#[test]
fn captured_violations_do_not_count_globally() {
    let m = TrackedMutex::new(LockClass::TestInner, ());
    let outer = TrackedMutex::new(LockClass::TestOuter, ());
    let before = vphi_sync::audit::violation_count();
    let ((), v) = capture_violations(|| {
        let _i = m.lock();
        let _o = outer.lock(); // inversion, captured
    });
    assert!(!v.is_empty());
    assert_eq!(vphi_sync::audit::violation_count(), before, "captured reports must not count");
}

//! Full-stack integration: guest → frontend → virtio → backend → host
//! SCIF → PCIe → device, in realistic combinations.

use vphi::builder::{VmConfig, VphiHost};
use vphi_scif::window::WindowBacking;
use vphi_scif::{Port, Prot, RmaFlags, ScifAddr};
use vphi_sim_core::units::MIB;
use vphi_sim_core::{SimDuration, Timeline};

/// Device echo server used by several tests.
fn device_echo(host: &VphiHost, mic: usize, port: Port) -> std::thread::JoinHandle<()> {
    let server = host.device_endpoint(mic).unwrap();
    let (tx, rx) = std::sync::mpsc::channel();
    let h = std::thread::spawn(move || {
        let mut tl = Timeline::new();
        server.bind(port, &mut tl).unwrap();
        server.listen(4, &mut tl).unwrap();
        tx.send(()).unwrap();
        let conn = server.accept(&mut tl).unwrap();
        loop {
            let mut len = [0u8; 4];
            if conn.core().recv(&mut len, &mut tl) != Ok(4) {
                break;
            }
            let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
            if conn.core().recv(&mut payload, &mut tl) != Ok(payload.len()) {
                break;
            }
            if conn.core().send(&len, &mut tl).is_err()
                || conn.core().send(&payload, &mut tl).is_err()
            {
                break;
            }
        }
    });
    rx.recv().unwrap();
    h
}

#[test]
fn guest_payload_integrity_across_sizes() {
    let host = VphiHost::new(1);
    let echo = device_echo(&host, 0, Port(970));
    let vm = host.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let ep = vm.open_scif(&mut tl).unwrap();
    ep.connect(ScifAddr::new(host.device_node(0), Port(970)), &mut tl).unwrap();

    let mut rng = vphi_sim_core::SplitMix64::new(99);
    for size in [1usize, 100, 4096, 1 << 16, 5 << 20] {
        let mut data = vec![0u8; size];
        rng.fill_bytes(&mut data);
        ep.send(&(size as u32).to_le_bytes(), &mut tl).unwrap();
        ep.send(&data, &mut tl).unwrap();
        let mut len = [0u8; 4];
        ep.recv(&mut len, &mut tl).unwrap();
        assert_eq!(u32::from_le_bytes(len) as usize, size);
        let mut back = vec![0u8; size];
        ep.recv(&mut back, &mut tl).unwrap();
        assert_eq!(back, data, "payload corrupted at size {size}");
    }
    ep.close(&mut tl).unwrap();
    vm.shutdown();
    echo.join().unwrap();
    // The full guest→ring→backend→fabric→device path ran under the
    // lock-order audit without a single violation.
    assert_eq!(vphi_sync::audit::violation_count(), 0, "lock-order violations detected");
    if vphi_sync::audit::ENABLED {
        assert!(vphi_sync::audit::stats().cycle_checks > 0, "audit was not exercised");
    }
}

#[test]
fn two_cards_are_independent_nodes() {
    let host = VphiHost::new(2);
    let echo0 = device_echo(&host, 0, Port(971));
    let echo1 = device_echo(&host, 1, Port(971)); // same port, different node

    let vm = host.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let ep0 = vm.open_scif(&mut tl).unwrap();
    let ep1 = vm.open_scif(&mut tl).unwrap();
    ep0.connect(ScifAddr::new(host.device_node(0), Port(971)), &mut tl).unwrap();
    ep1.connect(ScifAddr::new(host.device_node(1), Port(971)), &mut tl).unwrap();

    for (i, ep) in [&ep0, &ep1].into_iter().enumerate() {
        let msg = format!("to card {i}");
        ep.send(&(msg.len() as u32).to_le_bytes(), &mut tl).unwrap();
        ep.send(msg.as_bytes(), &mut tl).unwrap();
        let mut len = [0u8; 4];
        ep.recv(&mut len, &mut tl).unwrap();
        let mut back = vec![0u8; msg.len()];
        ep.recv(&mut back, &mut tl).unwrap();
        assert_eq!(back, msg.as_bytes());
    }
    // The guest sees three SCIF nodes (host + 2 cards).
    assert_eq!(ep0.node_count(&mut tl).unwrap(), 3);

    ep0.close(&mut tl).unwrap();
    ep1.close(&mut tl).unwrap();
    vm.shutdown();
    echo0.join().unwrap();
    echo1.join().unwrap();
}

#[test]
fn guest_window_is_visible_to_device_rma() {
    // The *guest* registers memory; the *device* reads and writes it —
    // the reverse direction of the usual benchmarks, exercising
    // GuestWindowBytes end to end.
    let host = VphiHost::new(1);
    let server = host.device_endpoint(0).unwrap();
    let (tx, rx) = std::sync::mpsc::channel();
    let device = std::thread::spawn(move || {
        let mut tl = Timeline::new();
        server.bind(Port(972), &mut tl).unwrap();
        server.listen(2, &mut tl).unwrap();
        tx.send(()).unwrap();
        let conn = server.accept(&mut tl).unwrap();
        // Wait for the guest to say its window is up, then RMA against it.
        let mut sig = [0u8; 8];
        conn.core().recv(&mut sig, &mut tl).unwrap();
        let roffset = u64::from_le_bytes(sig);
        let mut got = vec![0u8; 16];
        conn.core().vreadfrom(&mut got, roffset, RmaFlags::SYNC, &mut tl).unwrap();
        assert_eq!(&got, b"guest registered");
        conn.core().vwriteto(b"device wrote this", roffset + 64, RmaFlags::SYNC, &mut tl).unwrap();
        conn.core().send(&[1], &mut tl).unwrap();
    });
    rx.recv().unwrap();

    let vm = host.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let ep = vm.open_scif(&mut tl).unwrap();
    ep.connect(ScifAddr::new(host.device_node(0), Port(972)), &mut tl).unwrap();
    let buf = vm.alloc_buf(4096).unwrap();
    buf.fill(0, b"guest registered").unwrap();
    let roffset = ep.register(&buf, Prot::READ_WRITE, None, &mut tl).unwrap();
    ep.send(&roffset.to_le_bytes(), &mut tl).unwrap();
    // Wait for the device's ack.
    let mut ack = [0u8; 1];
    ep.recv(&mut ack, &mut tl).unwrap();
    // The device's RMA write landed in guest memory.
    let mut landed = vec![0u8; 17];
    buf.peek(64, &mut landed).unwrap();
    assert_eq!(&landed, b"device wrote this");

    ep.unregister(roffset, 4096, &mut tl).unwrap();
    ep.close(&mut tl).unwrap();
    vm.shutdown();
    device.join().unwrap();
}

#[test]
fn window_to_window_rma_between_guest_and_device() {
    let host = VphiHost::new(1);
    let board = std::sync::Arc::clone(host.board(0));
    let server = host.device_endpoint(0).unwrap();
    let (tx, rx) = std::sync::mpsc::channel();
    let device = std::thread::spawn(move || {
        let mut tl = Timeline::new();
        server.bind(Port(973), &mut tl).unwrap();
        server.listen(2, &mut tl).unwrap();
        tx.send(()).unwrap();
        let conn = server.accept(&mut tl).unwrap();
        let region = board.memory().alloc(4096).unwrap();
        region.write(0, b"from GDDR").unwrap();
        conn.register(Some(0), 4096, Prot::READ_WRITE, WindowBacking::Device(region), &mut tl)
            .unwrap();
        conn.core().send(&[1], &mut tl).unwrap(); // window ready
        let mut fin = [0u8; 1];
        let _ = conn.core().recv(&mut fin, &mut tl);
    });
    rx.recv().unwrap();

    let vm = host.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let ep = vm.open_scif(&mut tl).unwrap();
    ep.connect(ScifAddr::new(host.device_node(0), Port(973)), &mut tl).unwrap();
    let mut ready = [0u8; 1];
    ep.recv(&mut ready, &mut tl).unwrap();

    let lbuf = vm.alloc_buf(4096).unwrap();
    let loff = ep.register(&lbuf, Prot::READ_WRITE, None, &mut tl).unwrap();
    // readfrom: device window [0..9) → guest window [loff..loff+9).
    ep.readfrom(loff, 9, 0, RmaFlags::SYNC, &mut tl).unwrap();
    let mut out = [0u8; 9];
    lbuf.peek(0, &mut out).unwrap();
    assert_eq!(&out, b"from GDDR");
    // writeto: guest window → device window.
    lbuf.fill(100, b"to GDDR").unwrap();
    ep.writeto(loff + 100, 7, 200, RmaFlags::SYNC, &mut tl).unwrap();
    let region = host.board(0).memory().region_at(0).unwrap();
    let mut dev_check = [0u8; 7];
    region.read(200, &mut dev_check).unwrap();
    assert_eq!(&dev_check, b"to GDDR");

    ep.send(&[0], &mut tl).unwrap();
    ep.close(&mut tl).unwrap();
    vm.shutdown();
    device.join().unwrap();
}

#[test]
fn rdma_plus_polling_completion_flag_idiom() {
    // Paper §II-B: "developers frequently use a combination of RDMA and
    // polling as an alternative to blocking methods, in order to notify
    // the client of an I/O completion event."  A guest writes a payload
    // with async RMA, then fence_signals a completion flag into the
    // remote window; the device side spins on the flag.
    let host = VphiHost::new(1);
    let board = std::sync::Arc::clone(host.board(0));
    let server = host.device_endpoint(0).unwrap();
    let (tx, rx) = std::sync::mpsc::channel();
    let device = std::thread::spawn(move || {
        let mut tl = Timeline::new();
        server.bind(Port(992), &mut tl).unwrap();
        server.listen(2, &mut tl).unwrap();
        tx.send(()).unwrap();
        let conn = server.accept(&mut tl).unwrap();
        let region = board.memory().alloc(8192).unwrap();
        let offset = region.offset();
        conn.register(
            Some(0),
            8192,
            Prot::READ_WRITE,
            WindowBacking::Device(std::sync::Arc::clone(&region)),
            &mut tl,
        )
        .unwrap();
        conn.core().send(&[1], &mut tl).unwrap();
        // Spin on the completion flag at window offset 4096 (the device
        // would normally scif_poll or busy-read its own memory).
        let mut flag = [0u8; 8];
        for _ in 0..5000 {
            region.read(4096, &mut flag).unwrap();
            if u64::from_le_bytes(flag) == 0xC0FFEE {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(u64::from_le_bytes(flag), 0xC0FFEE, "flag never arrived");
        // The payload RMA'd before the flag must already be there
        // (fence_signal orders it).
        let mut payload = [0u8; 10];
        region.read(0, &mut payload).unwrap();
        assert_eq!(&payload, b"rdma bytes");
        let _ = board.memory().free(offset);
    });
    rx.recv().unwrap();

    let vm = host.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let ep = vm.open_scif(&mut tl).unwrap();
    ep.connect(ScifAddr::new(host.device_node(0), Port(992)), &mut tl).unwrap();
    let mut ready = [0u8; 1];
    ep.recv(&mut ready, &mut tl).unwrap();

    // Local window for the fence_signal's local flag.
    let lbuf = vm.alloc_buf(4096).unwrap();
    let loff = ep.register(&lbuf, Prot::READ_WRITE, None, &mut tl).unwrap();
    // Async RMA write, then the ordered completion flag.
    let data = vm.alloc_buf(4096).unwrap();
    data.fill(0, b"rdma bytes").unwrap();
    ep.vwriteto(&data, 0, RmaFlags::ASYNC, &mut tl).unwrap();
    ep.fence_signal(loff, 1, 4096, 0xC0FFEE, &mut tl).unwrap();
    // The local flag was also set.
    let mut lflag = [0u8; 8];
    lbuf.peek(0, &mut lflag).unwrap();
    assert_eq!(u64::from_le_bytes(lflag), 1);

    device.join().unwrap();
    ep.close(&mut tl).unwrap();
    vm.shutdown();
}

#[test]
fn async_rma_and_fences_through_vphi() {
    let host = VphiHost::new(1);
    let server = host.device_endpoint(0).unwrap();
    let board = std::sync::Arc::clone(host.board(0));
    let (tx, rx) = std::sync::mpsc::channel();
    let device = std::thread::spawn(move || {
        let mut tl = Timeline::new();
        server.bind(Port(974), &mut tl).unwrap();
        server.listen(2, &mut tl).unwrap();
        tx.send(()).unwrap();
        let conn = server.accept(&mut tl).unwrap();
        let region = board.memory().alloc(16 * MIB).unwrap();
        conn.register(Some(0), 16 * MIB, Prot::READ_WRITE, WindowBacking::Device(region), &mut tl)
            .unwrap();
        conn.core().send(&[1], &mut tl).unwrap();
        let mut fin = [0u8; 1];
        let _ = conn.core().recv(&mut fin, &mut tl);
    });
    rx.recv().unwrap();

    let vm = host.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let ep = vm.open_scif(&mut tl).unwrap();
    ep.connect(ScifAddr::new(host.device_node(0), Port(974)), &mut tl).unwrap();
    let mut ready = [0u8; 1];
    ep.recv(&mut ready, &mut tl).unwrap();

    let buf = vm.alloc_buf(8 * MIB).unwrap();
    // Async write: cheap to issue…
    let mut issue_tl = Timeline::new();
    ep.vwriteto(&buf, 0, RmaFlags::ASYNC, &mut issue_tl).unwrap();
    // …but the fence absorbs the transfer time.
    let marker = ep.fence_mark(&mut tl).unwrap();
    let mut fence_tl = Timeline::new();
    ep.fence_wait(marker, &mut fence_tl).unwrap();
    // The sync path must be slower to issue than async-issue alone.
    let mut sync_tl = Timeline::new();
    ep.vwriteto(&buf, 0, RmaFlags::SYNC, &mut sync_tl).unwrap();
    assert!(issue_tl.total() < sync_tl.total());
    // Issue + fence ≈ sync (same physics, split differently).
    let combined = issue_tl.total() + fence_tl.total();
    let diff = combined.as_nanos().abs_diff(sync_tl.total().as_nanos());
    assert!(
        diff < SimDuration::from_millis(3).as_nanos(),
        "async+fence {combined} vs sync {}",
        sync_tl.total()
    );

    ep.send(&[0], &mut tl).unwrap();
    ep.close(&mut tl).unwrap();
    vm.shutdown();
    device.join().unwrap();
}

//! End-to-end request tracing: span-graph integrity across send/recv and
//! RMA, byte-stable encoding on a fixed virtual-clock schedule, and no
//! orphan spans when a chaos fault plan fires mid-request.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use vphi::builder::{VmConfig, VphiHost, VphiVm};
use vphi_faults::FaultPlan;
use vphi_scif::window::WindowBacking;
use vphi_scif::{Port, Prot, RmaFlags, ScifAddr, ScifError};
use vphi_sim_core::Timeline;
use vphi_trace::{SpanRec, Stage, TraceConfig};

/// A device-side echo server that registers a 4 KiB window per
/// connection (so RMA ops land) and echoes fixed 5-byte messages.
fn echo_window_server(
    host: &VphiHost,
    port: u16,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<()> {
    let server = host.device_endpoint(0).unwrap();
    let board = Arc::clone(host.board(0));
    let mut tl = Timeline::new();
    server.bind(Port(port), &mut tl).unwrap();
    server.listen(8, &mut tl).unwrap();
    std::thread::spawn(move || {
        let mut tl = Timeline::new();
        while !stop.load(Ordering::Relaxed) {
            match server.try_accept(&mut tl) {
                Ok(Some(conn)) => {
                    if let Ok(region) = board.memory().alloc(4096) {
                        let _ = conn.register(
                            Some(0),
                            4096,
                            Prot::READ_WRITE,
                            WindowBacking::Device(region),
                            &mut tl,
                        );
                    }
                    loop {
                        let mut buf = [0u8; 5];
                        match conn.recv(&mut buf, &mut tl) {
                            Ok(5) => {
                                if conn.send(&buf, &mut tl).is_err() {
                                    break;
                                }
                            }
                            _ => break,
                        }
                    }
                    conn.close();
                }
                Ok(None) | Err(_) => std::thread::sleep(Duration::from_millis(2)),
            }
        }
    })
}

/// One traced guest session: open, connect, 5-byte echo, a 4 KiB RMA
/// write into the server window, close.
fn one_session(host: &VphiHost, vm: &VphiVm, port: u16) -> Result<(), ScifError> {
    let mut tl = Timeline::new();
    let addr = ScifAddr::new(host.device_node(0), Port(port));
    let ep = vm.open_scif(&mut tl)?;
    ep.connect(addr, &mut tl)?;
    ep.send(b"ping!", &mut tl)?;
    let mut back = [0u8; 5];
    let mut got = 0;
    while got < back.len() {
        let n = ep.recv(&mut back[got..], &mut tl)?;
        if n == 0 {
            return Err(ScifError::ConnReset);
        }
        got += n;
    }
    assert_eq!(&back, b"ping!");
    let buf = vm.alloc_buf(4096)?;
    ep.vwriteto(&buf, 0, RmaFlags::SYNC, &mut tl)?;
    ep.close(&mut tl)?;
    Ok(())
}

/// Check every retained span graph: per trace, exactly one root (id 1,
/// parent 0), unique ids, and every parent resolving to a span of the
/// same trace.
fn assert_well_formed(spans: &[SpanRec]) {
    let mut by_trace: BTreeMap<u64, Vec<&SpanRec>> = BTreeMap::new();
    for s in spans {
        by_trace.entry(s.trace_id).or_default().push(s);
    }
    assert!(!by_trace.is_empty(), "no traces recorded");
    for (trace_id, spans) in by_trace {
        let ids: BTreeSet<u32> = spans.iter().map(|s| s.id).collect();
        assert_eq!(ids.len(), spans.len(), "trace {trace_id}: duplicate span ids");
        let roots: Vec<_> = spans.iter().filter(|s| s.parent == 0).collect();
        assert_eq!(roots.len(), 1, "trace {trace_id}: expected exactly one root");
        assert_eq!(roots[0].id, 1, "trace {trace_id}: root id");
        for s in &spans {
            assert!(
                s.parent == 0 || ids.contains(&s.parent),
                "trace {trace_id}: span {} ({}) has unresolved parent {}",
                s.id,
                s.name,
                s.parent
            );
        }
    }
}

#[test]
fn span_graph_covers_every_layer_and_is_well_formed() {
    let host = VphiHost::new(1);
    let tracer = host.arm_tracing(TraceConfig { ring_capacity: 1 << 16, summary_capacity: 1024 });
    let stop = Arc::new(AtomicBool::new(false));
    let server = echo_window_server(&host, 930, Arc::clone(&stop));
    let vm = host.spawn_vm(VmConfig::default());

    one_session(&host, &vm, 930).expect("traced session");

    let vm_id = vm.vm().id();
    let spans = tracer.spans(vm_id);
    assert_well_formed(&spans);

    // The trace follows the request through every layer of the stack.
    let names: BTreeSet<&str> = spans.iter().map(|s| s.name).collect();
    for expected in [
        "guest-syscall",  // frontend marshalling
        "virtio-ring",    // descriptor + kick
        "backend-replay", // backend decode + execute
        "scif_send",      // host SCIF replay of the guest's send
        "scif_recv",
        "scif_vwriteto",
        "complete",      // used-ring write-back + interrupt
        "wait-complete", // frontend waiting scheme
    ] {
        assert!(names.contains(expected), "missing span {expected:?} in {names:?}");
    }

    // Child spans nest under the op roots: a scif_* replay span's parent
    // chain reaches the backend-replay span.
    let by_id: BTreeMap<(u64, u32), &SpanRec> =
        spans.iter().map(|s| ((s.trace_id, s.id), s)).collect();
    let scif_send = spans.iter().find(|s| s.name == "scif_send").unwrap();
    let parent = by_id[&(scif_send.trace_id, scif_send.parent)];
    assert_eq!(parent.name, "backend-replay");

    // Summaries cover the ops the session issued, and the RMA write's
    // decomposition has real DMA time.
    let ops: BTreeSet<&str> = tracer.summaries(vm_id).iter().map(|s| s.op).collect();
    for op in ["open", "connect", "send", "recv", "vwriteto", "close"] {
        assert!(ops.contains(op), "missing summary for {op:?} in {ops:?}");
    }
    let vwrite =
        tracer.summaries(vm_id).into_iter().find(|s| s.op == "vwriteto").expect("vwriteto summary");
    assert!(!vwrite.stages[Stage::Dma.index()].is_zero(), "{vwrite:?}");
    assert_eq!(vwrite.stages.iter().copied().sum::<vphi_sim_core::SimDuration>(), vwrite.total);

    // Everything opened was closed.
    let c = tracer.counters();
    assert_eq!(c.open_spans, 0, "{c:?}");
    assert_eq!(c.traces_started, c.traces_finished, "{c:?}");
    assert_eq!(c.spans_dropped, 0, "{c:?}");

    // The chrome://tracing export carries the same spans.
    let chrome = tracer.chrome_trace_json();
    assert!(chrome.contains("\"traceEvents\""));
    assert!(chrome.contains("backend-replay"));

    stop.store(true, Ordering::Relaxed);
    vm.shutdown();
    server.join().unwrap();
}

/// One deterministic traced workload; returns the canonical encoding,
/// with the VM id (a process-global counter, so it differs between test
/// runs in the same process) normalized out.
fn encoded_run() -> String {
    let host = VphiHost::new(1);
    let tracer = host.arm_tracing(TraceConfig::default());
    let stop = Arc::new(AtomicBool::new(false));
    let server = echo_window_server(&host, 931, Arc::clone(&stop));
    let vm = host.spawn_vm(VmConfig::default());
    one_session(&host, &vm, 931).expect("traced session");
    let encoded = tracer.encode().replace(&format!("vm={}", vm.vm().id()), "vm=#");
    stop.store(true, Ordering::Relaxed);
    vm.shutdown();
    server.join().unwrap();
    encoded
}

#[test]
fn trace_encoding_is_byte_stable() {
    let a = encoded_run();
    let b = encoded_run();
    assert!(a.starts_with("vphi-trace v1\n"), "{a:?}");
    assert!(a.contains("span vm="), "no spans encoded: {a:?}");
    assert!(a.contains("summary vm="), "no summaries encoded: {a:?}");
    // Virtual time is the only clock in the encoding, so two identical
    // schedules encode identically — byte for byte.
    assert_eq!(a, b);
}

#[test]
fn chaos_faults_leave_no_orphan_spans() {
    let host = VphiHost::new(1);
    let tracer = host.arm_tracing(TraceConfig::default());
    let _injector = host.arm_faults(FaultPlan::from_seed(47, 12));
    let stop = Arc::new(AtomicBool::new(false));
    let server = echo_window_server(&host, 932, Arc::clone(&stop));
    let vm = host.spawn_vm(VmConfig::default());

    // Drive sessions through the fault plan with chaos-style recovery:
    // retry retryable errors, reset a failed card, stop if the guest dies.
    let mut completed = 0;
    'sessions: for _ in 0..8 {
        for _attempt in 0..25 {
            if vm.frontend().channel().is_shutdown() {
                break 'sessions;
            }
            match one_session(&host, &vm, 932) {
                Ok(()) => {
                    completed += 1;
                    continue 'sessions;
                }
                Err(ScifError::NoDev) if host.board(0).is_failed() => {
                    host.reset_card(0);
                }
                Err(_) => {}
            }
        }
    }
    let died = vm.frontend().channel().is_shutdown();
    assert!(died || completed == 8, "neither died nor finished ({completed}/8)");

    // Quiesce, then audit: every begun span ended and every adopted root
    // finished — errors, deadline retries, card resets and guest death
    // all travel the same finish paths as success.
    stop.store(true, Ordering::Relaxed);
    vm.shutdown();
    server.join().unwrap();

    let c = tracer.counters();
    assert!(c.traces_started > 0, "{c:?}");
    assert_eq!(c.traces_started, c.traces_finished, "orphan roots: {c:?}");
    assert_eq!(c.open_spans, 0, "orphan spans: {c:?}");
}

//! Coherence of `scif_mmap` mappings: a guest mapping, host RMA and the
//! device itself all see the same GDDR bytes.

use std::sync::Arc;

use vphi::builder::{VmConfig, VphiHost};
use vphi_scif::window::WindowBacking;
use vphi_scif::{Port, Prot, ScifAddr};
use vphi_sim_core::cost::PAGE_SIZE;
use vphi_sim_core::Timeline;
use vphi_vmm::kvm::KvmPatch;

/// Device server exposing 4 pages of real GDDR; sends the region's device
/// offset so the test can poke it from the device side too.
fn window_server(
    host: &VphiHost,
    port: Port,
) -> (std::thread::JoinHandle<()>, std::sync::mpsc::Receiver<u64>) {
    let board = Arc::clone(host.board(0));
    let server = host.device_endpoint(0).unwrap();
    let (ready_tx, ready_rx) = std::sync::mpsc::channel();
    let (off_tx, off_rx) = std::sync::mpsc::channel();
    let h = std::thread::spawn(move || {
        let mut tl = Timeline::new();
        server.bind(port, &mut tl).unwrap();
        server.listen(2, &mut tl).unwrap();
        ready_tx.send(()).unwrap();
        let conn = server.accept(&mut tl).unwrap();
        let region = board.memory().alloc(4 * PAGE_SIZE).unwrap();
        region.write(0, b"device wrote before mmap").unwrap();
        off_tx.send(region.offset()).unwrap();
        conn.register(
            Some(0),
            4 * PAGE_SIZE,
            Prot::READ_WRITE,
            WindowBacking::Device(region),
            &mut tl,
        )
        .unwrap();
        conn.core().send(&[1], &mut tl).unwrap();
        let mut b = [0u8; 1];
        let _ = conn.core().recv(&mut b, &mut tl);
    });
    ready_rx.recv().unwrap();
    (h, off_rx)
}

#[test]
fn guest_mapping_sees_device_writes_and_vice_versa() {
    let host = VphiHost::new(1);
    let (server, off_rx) = window_server(&host, Port(985));

    let vm = host.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let ep = vm.open_scif(&mut tl).unwrap();
    ep.connect(ScifAddr::new(host.device_node(0), Port(985)), &mut tl).unwrap();
    let mut ready = [0u8; 1];
    ep.recv(&mut ready, &mut tl).unwrap();
    let device_offset = off_rx.recv().unwrap();

    let map = ep.mmap(vm.vm().kvm(), 0, 2 * PAGE_SIZE, Prot::READ_WRITE, &mut tl).unwrap();

    // 1. Pre-mmap device write is visible through the mapping.
    let mut seen = [0u8; 24];
    map.load(0, &mut seen, &mut tl).unwrap();
    assert_eq!(&seen, b"device wrote before mmap");

    // 2. Guest store is visible to the device.
    map.store(256, b"guest store", &mut tl).unwrap();
    let region = host.board(0).memory().region_at(device_offset).unwrap();
    let mut dev_view = [0u8; 11];
    region.read(256, &mut dev_view).unwrap();
    assert_eq!(&dev_view, b"guest store");

    // 3. A device-local write after the mapping exists is visible through
    //    the guest mapping (one memory, three observers).
    region.write(512, b"device poked it").unwrap();
    let mut poked = [0u8; 15];
    map.load(512, &mut poked, &mut tl).unwrap();
    assert_eq!(&poked, b"device poked it");

    // 4. Faults were charged on first touch only.
    let faults_after_loads = vm.vm().kvm().fault_count();
    map.load(0, &mut seen, &mut tl).unwrap();
    assert_eq!(vm.vm().kvm().fault_count(), faults_after_loads);

    map.munmap(&mut tl).unwrap();
    // Double munmap is rejected.
    assert!(map.munmap(&mut tl).is_err());

    ep.send(&[0], &mut tl).unwrap();
    ep.close(&mut tl).unwrap();
    vm.shutdown();
    server.join().unwrap();
}

#[test]
fn mapping_offsets_respect_the_window() {
    let host = VphiHost::new(1);
    let (server, _off) = window_server(&host, Port(986));
    let vm = host.spawn_vm(VmConfig::default());
    let mut tl = Timeline::new();
    let ep = vm.open_scif(&mut tl).unwrap();
    ep.connect(ScifAddr::new(host.device_node(0), Port(986)), &mut tl).unwrap();
    let mut ready = [0u8; 1];
    ep.recv(&mut ready, &mut tl).unwrap();

    // Map the *second* page only; offset arithmetic must hold.
    let map = ep.mmap(vm.vm().kvm(), PAGE_SIZE, PAGE_SIZE, Prot::READ_WRITE, &mut tl).unwrap();
    map.store_u64(0, 0xFACE, &mut tl).unwrap();
    assert_eq!(map.load_u64(0, &mut tl).unwrap(), 0xFACE);
    // Out-of-mapping access fails even though the window continues.
    let mut b = [0u8; 1];
    assert!(map.load(PAGE_SIZE, &mut b, &mut tl).is_err());
    // Beyond the registered window entirely.
    assert!(ep.mmap(vm.vm().kvm(), 16 * PAGE_SIZE, PAGE_SIZE, Prot::READ, &mut tl).is_err());

    map.munmap(&mut tl).unwrap();
    ep.send(&[0], &mut tl).unwrap();
    ep.close(&mut tl).unwrap();
    vm.shutdown();
    server.join().unwrap();
}

#[test]
fn unpatched_kvm_cannot_serve_the_mapping() {
    let host = VphiHost::new(1);
    let (server, _off) = window_server(&host, Port(987));
    let vm = host.spawn_vm(VmConfig::builder().patch(KvmPatch::Unpatched).build());
    let mut tl = Timeline::new();
    let ep = vm.open_scif(&mut tl).unwrap();
    ep.connect(ScifAddr::new(host.device_node(0), Port(987)), &mut tl).unwrap();
    let mut ready = [0u8; 1];
    ep.recv(&mut ready, &mut tl).unwrap();
    // mmap itself succeeds (the VMA is installed)…
    let map = ep.mmap(vm.vm().kvm(), 0, PAGE_SIZE, Prot::READ_WRITE, &mut tl).unwrap();
    // …but the first dereference faults into stock KVM and dies.
    let mut b = [0u8; 1];
    assert!(map.load(0, &mut b, &mut tl).is_err());
    ep.send(&[0], &mut tl).unwrap();
    ep.close(&mut tl).unwrap();
    vm.shutdown();
    server.join().unwrap();
}
